"""Smart-meter load simulation.

Produces sub-minute readings ("collecting data at sub-minute
granularities enables sophisticated applications", Section VI) for a
fleet of meters attached to a grid topology:

- household profiles: base load + morning/evening peaks + appliance
  noise;
- industrial profiles: business-hours plateau;
- injectable anomalies: **theft** (a meter under-reports a fraction of
  its true consumption from some time on), **voltage sags/swells** at a
  transformer, and **faults** (a subtree loses supply entirely).

The fleet also produces *transformer-level* measurements (the utility's
own feeder instrumentation), which always see the true consumption --
the discrepancy between those and the reported meter sums is exactly
what the theft detector works on.
"""

import hashlib
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream


def _unit_gauss(seed, meter, timestamp, salt):
    """A deterministic standard-normal draw for (meter, timestamp).

    Hash-derived (Box-Muller) so the same sample is returned no matter
    how many times or in what order the model is queried -- the meter's
    reported value and the transformer's aggregate must agree on the
    underlying consumption.
    """
    material = ("%s|%s|%.3f|%s" % (seed, meter, timestamp, salt)).encode()
    digest = hashlib.sha256(material).digest()
    u1 = (int.from_bytes(digest[:8], "big") + 1) / (2**64 + 2)
    u2 = int.from_bytes(digest[8:16], "big") / 2**64
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

NOMINAL_VOLTS = 230.0
DAY = 86400.0


@dataclass(frozen=True)
class MeterReading:
    """One sample from one meter."""

    meter_id: str
    timestamp: float
    watts: float
    volts: float

    def to_record(self):
        """Plain-dict form for map/reduce pipelines."""
        return {
            "meter": self.meter_id,
            "t": self.timestamp,
            "w": self.watts,
            "v": self.volts,
        }


@dataclass
class _TheftInjection:
    start: float
    fraction: float  # share of true consumption hidden from the meter


@dataclass
class _VoltageInjection:
    transformer: str
    start: float
    end: float
    per_unit: float  # 0.8 = sag to 80%, 1.15 = swell


@dataclass
class _FaultInjection:
    element: str
    start: float
    end: float


class SmartMeterFleet:
    """All meters of a topology, with deterministic per-meter profiles."""

    def __init__(self, topology, seed=0, industrial_fraction=0.15,
                 interval=30.0):
        self.topology = topology
        self.interval = interval
        self.seed = seed
        self.rng = RandomStream(seed).child("meters")
        self._profiles = {}
        self._thefts = {}
        self._voltage_events = []
        self._faults = []
        for meter in topology.meters:
            stream = self.rng.child(meter)
            industrial = stream.random() < industrial_fraction
            self._profiles[meter] = {
                "industrial": industrial,
                "base": stream.uniform(80.0, 250.0),
                "peak": stream.uniform(800.0, 3000.0)
                if not industrial
                else stream.uniform(4000.0, 12000.0),
                "phase": stream.uniform(-1.0, 1.0),
                "noise": stream.uniform(0.02, 0.08),
                "stream": stream,
            }

    # --- anomaly injection ---

    def inject_theft(self, meter, start, fraction=0.4):
        """From ``start`` on, ``meter`` hides ``fraction`` of its load."""
        if meter not in self._profiles:
            raise ConfigurationError("unknown meter %r" % meter)
        if not 0 < fraction < 1:
            raise ConfigurationError("theft fraction must be in (0, 1)")
        self._thefts[meter] = _TheftInjection(start=start, fraction=fraction)

    def inject_voltage_event(self, transformer, start, end, per_unit):
        """Sag (<1) or swell (>1) at a transformer for [start, end)."""
        if transformer not in self.topology.transformers:
            raise ConfigurationError("unknown transformer %r" % transformer)
        self._voltage_events.append(
            _VoltageInjection(transformer, start, end, per_unit)
        )

    def inject_fault(self, element, start, end):
        """Supply interruption for the whole subtree of ``element``."""
        self._faults.append(_FaultInjection(element, start, end))

    @property
    def theft_ground_truth(self):
        """Meters with injected theft (for precision/recall scoring)."""
        return set(self._thefts)

    # --- load model ---

    def true_watts(self, meter, timestamp):
        """Actual consumption of ``meter`` at ``timestamp``."""
        profile = self._profiles[meter]
        day_position = (timestamp % DAY) / DAY
        if profile["industrial"]:
            # Business-hours plateau, 07:00-19:00.
            active = 0.29 <= day_position <= 0.79
            level = profile["peak"] if active else profile["base"]
        else:
            # Morning (07:30) and evening (19:30) peaks.
            morning = math.exp(-((day_position - 0.3125) ** 2) / 0.002)
            evening = math.exp(-((day_position - 0.8125) ** 2) / 0.004)
            shape = morning * 0.6 + evening + profile["phase"] * 0.05
            level = profile["base"] + profile["peak"] * max(0.0, shape)
        noise = 1.0 + profile["noise"] * _unit_gauss(
            self.seed, meter, timestamp, "load"
        )
        return max(0.0, level * noise)

    def _meters_under(self, element):
        cache = getattr(self, "_subtree_cache", None)
        if cache is None:
            cache = self._subtree_cache = {}
        meters = cache.get(element)
        if meters is None:
            meters = cache[element] = frozenset(
                self.topology.meters_under(element)
            )
        return meters

    def _supplied(self, meter, timestamp):
        for fault in self._faults:
            if fault.start <= timestamp < fault.end:
                if meter in self._meters_under(fault.element):
                    return False
        return True

    def _volts(self, meter, timestamp):
        transformer = self.topology.transformer_of(meter)
        volts = NOMINAL_VOLTS * (
            1.0 + 0.004 * _unit_gauss(self.seed, meter, timestamp, "volts")
        )
        for event in self._voltage_events:
            if event.transformer == transformer and event.start <= timestamp < event.end:
                volts = NOMINAL_VOLTS * event.per_unit
        return volts

    def reading(self, meter, timestamp):
        """The reading the *meter reports* (theft-adjusted)."""
        if not self._supplied(meter, timestamp):
            return MeterReading(meter, timestamp, 0.0, 0.0)
        watts = self.true_watts(meter, timestamp)
        theft = self._thefts.get(meter)
        if theft is not None and timestamp >= theft.start:
            watts *= 1.0 - theft.fraction
        return MeterReading(meter, timestamp, watts, self._volts(meter, timestamp))

    def transformer_watts(self, transformer, timestamp):
        """True aggregate load the utility measures at the transformer."""
        total = 0.0
        for meter in self.topology.meters_under(transformer):
            if self._supplied(meter, timestamp):
                total += self.true_watts(meter, timestamp)
        return total

    # --- bulk generation ---

    def readings_window(self, start, end):
        """All meter readings in [start, end), meter-major order."""
        readings = []
        for meter in self.topology.meters:
            timestamp = start
            while timestamp < end:
                readings.append(self.reading(meter, timestamp))
                timestamp += self.interval
        return readings

    def transformer_window(self, start, end):
        """Transformer measurements for the same window."""
        measurements = []
        for transformer in self.topology.transformers:
            timestamp = start
            while timestamp < end:
                measurements.append(
                    (transformer, timestamp,
                     self.transformer_watts(transformer, timestamp))
                )
                timestamp += self.interval
        return measurements
