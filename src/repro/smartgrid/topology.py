"""The distribution-grid topology.

A tree rooted at the substation: substation -> feeders -> transformers
-> meters.  Fault localisation and theft detection both reason over
this hierarchy (theft compares transformer-level totals against the sum
of child meters; faults are localised to the deepest element whose
entire subtree went dark).
"""

import networkx as nx

from repro.errors import ConfigurationError


class GridTopology:
    """A radial distribution network."""

    def __init__(self, substation="substation"):
        self.graph = nx.DiGraph()
        self.substation = substation
        self.graph.add_node(substation, kind="substation")

    @classmethod
    def build(cls, feeders=2, transformers_per_feeder=3, meters_per_transformer=8):
        """A regular radial grid with deterministic names."""
        topology = cls()
        for feeder_index in range(feeders):
            feeder = "feeder-%d" % feeder_index
            topology.add_feeder(feeder)
            for transformer_index in range(transformers_per_feeder):
                transformer = "tx-%d-%d" % (feeder_index, transformer_index)
                topology.add_transformer(transformer, feeder)
                for meter_index in range(meters_per_transformer):
                    meter = "meter-%d-%d-%02d" % (
                        feeder_index, transformer_index, meter_index
                    )
                    topology.add_meter(meter, transformer)
        return topology

    def _add(self, name, parent, kind):
        if name in self.graph:
            raise ConfigurationError("duplicate grid element %r" % name)
        if parent not in self.graph:
            raise ConfigurationError("unknown parent %r" % parent)
        self.graph.add_node(name, kind=kind)
        self.graph.add_edge(parent, name)

    def add_feeder(self, name):
        """Attach a feeder to the substation."""
        self._add(name, self.substation, "feeder")

    def add_transformer(self, name, feeder):
        """Attach a transformer to a feeder."""
        if self.kind_of(feeder) != "feeder":
            raise ConfigurationError("%r is not a feeder" % feeder)
        self._add(name, feeder, "transformer")

    def add_meter(self, name, transformer):
        """Attach a meter to a transformer."""
        if self.kind_of(transformer) != "transformer":
            raise ConfigurationError("%r is not a transformer" % transformer)
        self._add(name, transformer, "meter")

    def kind_of(self, name):
        """Element kind: substation/feeder/transformer/meter."""
        try:
            return self.graph.nodes[name]["kind"]
        except KeyError:
            raise ConfigurationError("unknown grid element %r" % name) from None

    def elements(self, kind):
        """All elements of one kind, sorted."""
        return sorted(
            node for node, data in self.graph.nodes(data=True)
            if data["kind"] == kind
        )

    @property
    def meters(self):
        return self.elements("meter")

    @property
    def transformers(self):
        return self.elements("transformer")

    @property
    def feeders(self):
        return self.elements("feeder")

    def parent_of(self, name):
        """The upstream element."""
        predecessors = list(self.graph.predecessors(name))
        return predecessors[0] if predecessors else None

    def meters_under(self, element):
        """All meters in ``element``'s subtree."""
        return sorted(
            node
            for node in nx.descendants(self.graph, element)
            if self.graph.nodes[node]["kind"] == "meter"
        )

    def transformer_of(self, meter):
        """The transformer feeding ``meter``."""
        if self.kind_of(meter) != "meter":
            raise ConfigurationError("%r is not a meter" % meter)
        return self.parent_of(meter)

    def path_to(self, element):
        """The chain substation -> ... -> element."""
        return nx.shortest_path(self.graph, self.substation, element)

    def deepest_common_ancestor(self, elements):
        """The lowest element whose subtree contains all ``elements``."""
        if not elements:
            raise ConfigurationError("need at least one element")
        paths = [self.path_to(element) for element in elements]
        ancestor = self.substation
        for level in zip(*paths):
            if len(set(level)) == 1:
                ancestor = level[0]
            else:
                break
        return ancestor
