"""Power-theft detection (use case 1).

A tampered meter under-reports its consumption, but the utility's own
transformer-level instrumentation still sees the true aggregate load.
The detector therefore:

1. aggregates *reported* meter energy per (transformer, time bucket) --
   a map/reduce job over the raw readings, optionally executed on the
   secure map/reduce engine so the cloud never sees consumption data;
2. compares it with the *measured* transformer energy: a persistent
   loss fraction above ``loss_threshold`` flags the transformer
   (non-technical loss);
3. within a flagged transformer, ranks meters by the drop of their
   reported load between a baseline window and the detection window --
   the meter whose reported share collapsed is the suspect.
"""

import ast
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce, plain_mapreduce


@dataclass
class TheftReport:
    """Outcome of one detection run."""

    flagged_transformers: list
    loss_fraction: dict
    suspects: dict = field(default_factory=dict)   # transformer -> meter

    def suspect_meters(self):
        """All suspect meters."""
        return set(self.suspects.values())

    def score(self, ground_truth):
        """(precision, recall) of the suspect set vs injected theft."""
        suspects = self.suspect_meters()
        if not suspects:
            return (1.0 if not ground_truth else 0.0,
                    1.0 if not ground_truth else 0.0)
        true_positives = len(suspects & set(ground_truth))
        precision = true_positives / len(suspects)
        recall = (
            true_positives / len(ground_truth) if ground_truth else 1.0
        )
        return precision, recall


def _aggregation_job(transformer_of, bucket_seconds, interval):
    """Build the map/reduce functions for reported-energy aggregation."""

    def map_reported(record):
        bucket = int(record["t"] // bucket_seconds)
        transformer = transformer_of[record["meter"]]
        # Energy in watt-seconds contributed by this sample.
        yield (transformer, bucket), record["w"] * interval

    def reduce_sum(_key, values):
        return sum(values)

    return map_reported, reduce_sum


class TheftDetector:
    """Compares reported and measured energy over the topology."""

    def __init__(self, topology, interval=30.0, bucket_seconds=900.0,
                 loss_threshold=0.05, platform=None, mappers=4, reducers=2):
        self.topology = topology
        self.interval = interval
        self.bucket_seconds = bucket_seconds
        self.loss_threshold = loss_threshold
        self.platform = platform
        self.mappers = mappers
        self.reducers = reducers
        self._transformer_of = {
            meter: topology.transformer_of(meter) for meter in topology.meters
        }

    def _aggregate_reported(self, readings):
        """(transformer, bucket) -> reported watt-seconds."""
        records = [reading.to_record() for reading in readings]
        map_fn, reduce_fn = _aggregation_job(
            self._transformer_of, self.bucket_seconds, self.interval
        )
        if self.platform is not None:
            job = MapReduceJob(map_fn, reduce_fn,
                               mappers=self.mappers, reducers=self.reducers)
            keyed = SecureMapReduce(self.platform, job).run(records)
            return {
                ast.literal_eval(key): value for key, value in keyed.items()
            }
        return plain_mapreduce(map_fn, reduce_fn, records)

    def _aggregate_measured(self, transformer_measurements):
        totals = defaultdict(float)
        for transformer, timestamp, watts in transformer_measurements:
            bucket = int(timestamp // self.bucket_seconds)
            totals[(transformer, bucket)] += watts * self.interval
        return totals

    def detect(self, readings, transformer_measurements,
               baseline_readings=None):
        """Run detection; returns a :class:`TheftReport`.

        ``baseline_readings`` (same length of window, pre-theft) enable
        meter-level suspect ranking; without them only transformer-level
        flags are produced.
        """
        if not readings:
            raise ConfigurationError("no readings to analyse")
        reported = self._aggregate_reported(readings)
        measured = self._aggregate_measured(transformer_measurements)

        # Persistent loss per transformer across buckets.
        loss_by_transformer = defaultdict(list)
        for (transformer, bucket), measured_energy in measured.items():
            if measured_energy <= 0:
                continue
            reported_energy = reported.get((transformer, bucket), 0.0)
            loss_by_transformer[transformer].append(
                1.0 - reported_energy / measured_energy
            )
        loss_fraction = {
            transformer: sum(losses) / len(losses)
            for transformer, losses in loss_by_transformer.items()
        }
        flagged = sorted(
            transformer
            for transformer, loss in loss_fraction.items()
            if loss > self.loss_threshold
        )

        suspects = {}
        if baseline_readings:
            suspects = self._rank_suspects(flagged, readings, baseline_readings)
        return TheftReport(
            flagged_transformers=flagged,
            loss_fraction=loss_fraction,
            suspects=suspects,
        )

    def _mean_by_meter(self, readings):
        sums = defaultdict(float)
        counts = defaultdict(int)
        for reading in readings:
            sums[reading.meter_id] += reading.watts
            counts[reading.meter_id] += 1
        return {
            meter: sums[meter] / counts[meter] for meter in sums
        }

    def _rank_suspects(self, flagged, readings, baseline_readings):
        current = self._mean_by_meter(readings)
        baseline = self._mean_by_meter(baseline_readings)
        suspects = {}
        for transformer in flagged:
            best_meter, best_drop = None, 0.0
            for meter in self.topology.meters_under(transformer):
                before = baseline.get(meter, 0.0)
                after = current.get(meter, before)
                if before <= 0:
                    continue
                drop = 1.0 - after / before
                if drop > best_drop:
                    best_meter, best_drop = meter, drop
            if best_meter is not None:
                suspects[transformer] = best_meter
        return suspects
