"""Exception hierarchy shared by all SecureCloud subsystems.

Every error raised by this package derives from :class:`SecureCloudError`
so applications can catch platform failures with a single handler while
still being able to distinguish security-relevant conditions (integrity
violations, failed attestation) from operational ones (capacity,
configuration).

Recovery policies additionally need to distinguish *transient* faults
(a crashed worker, a dropped frame, a momentarily unreachable store --
retrying may succeed) from *fatal* ones (tampered data, a bad
configuration -- retrying can never help).  :class:`TransientError` and
:class:`FatalError` split the hierarchy along that axis; the concrete
exceptions below subclass one of the two, so retry machinery can
classify failures with ``isinstance`` instead of string matching.
"""


class SecureCloudError(Exception):
    """Base class for all errors raised by the SecureCloud platform."""


class TransientError(SecureCloudError):
    """An operational fault that a bounded retry may resolve.

    Raised for conditions caused by the environment rather than the
    request itself: crashed workers, unreachable brokers, dropped or
    corrupted frames in flight, exhausted-but-draining capacity.  Retry
    policies treat these as retryable.
    """


class FatalError(SecureCloudError):
    """A failure no amount of retrying can fix.

    Raised for evidence of attack (integrity, attestation) and for
    caller mistakes (configuration).  Retry policies re-raise these
    immediately.
    """


class IntegrityError(FatalError):
    """Data failed an authenticity or integrity check.

    Raised when a MAC does not verify, a content hash mismatches, a
    signature is invalid, or protected file-system state was tampered
    with.  Treat this as evidence of an attack, not a transient fault.
    (Recovery protocols that *expect* in-flight corruption, like the
    reliable bulk transfer, catch this at the frame boundary and
    surface a :class:`TransientError` for the retransmission path.)
    """


class AttestationError(FatalError):
    """Remote or local attestation of an enclave failed.

    Raised when a quote's signature is invalid, the reported measurement
    does not match the expected one, or the attested platform is not
    trusted by the verification service.
    """


class CapacityError(TransientError):
    """A resource request exceeded available capacity.

    Raised by the EPC allocator, the container engine, and the GenPack
    scheduler when a placement or allocation cannot be satisfied.
    Transient: capacity frees as other work drains.
    """


class QuotaExceededError(CapacityError):
    """A tenant's request would exceed its assigned quota.

    Raised by the front door's quota ledger before any sealed-plane
    work happens.  Transient from the tenant's perspective: releasing
    held resources (or a quota raise) makes the same request succeed.
    Every rejection is counted and audited -- quota pressure degrades
    visibly, never silently.
    """


class ConfigurationError(FatalError):
    """Invalid or inconsistent configuration was supplied."""


class EnclaveError(SecureCloudError):
    """An enclave operation failed (bad ECALL, destroyed enclave, ...)."""


class EnclaveLostError(EnclaveError, TransientError):
    """The target enclave is gone (crashed, destroyed, or torn down).

    Transient from the caller's perspective: a replacement enclave of
    the same measured code can be loaded and the call replayed.
    """


class SchedulingError(TransientError):
    """The scheduler could not produce a valid placement."""


class TransportError(TransientError):
    """A simulated network channel failed (handshake, framing, routing)."""


class WorkerCrashError(TransientError):
    """A map/reduce worker crashed mid-task (injected or detected)."""


class BrokerUnavailableError(TransientError):
    """A pub/sub broker stopped responding; fail over or retry."""


class PartialCoverageError(TransientError):
    """A sharded matching plane answered with partitions missing.

    Raised (or wrapped into a ``PartialCoverage`` result) when one or
    more shard enclaves failed to match a publication: the match set
    may be silently smaller than the full database would produce, which
    a no-silent-loss plane must never return as if it were complete.
    Transient: the missing shards can be respawned from their sealed
    snapshots and the publication retried.  Carries the missing
    partition ids in :attr:`missing`.
    """

    def __init__(self, message, missing=()):
        super().__init__(message)
        self.missing = tuple(missing)


class StorageUnavailableError(TransientError):
    """The untrusted store refused an I/O operation transiently."""


class RetryExhaustedError(FatalError):
    """A retry policy gave up after its attempt budget.

    Carries the final underlying error (:attr:`last_error`) and the
    number of attempts made (:attr:`attempts`), so callers can report a
    clean, typed job failure instead of a stack of stale tracebacks.
    """

    def __init__(self, message, attempts=0, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error
