"""Exception hierarchy shared by all SecureCloud subsystems.

Every error raised by this package derives from :class:`SecureCloudError`
so applications can catch platform failures with a single handler while
still being able to distinguish security-relevant conditions (integrity
violations, failed attestation) from operational ones (capacity,
configuration).
"""


class SecureCloudError(Exception):
    """Base class for all errors raised by the SecureCloud platform."""


class IntegrityError(SecureCloudError):
    """Data failed an authenticity or integrity check.

    Raised when a MAC does not verify, a content hash mismatches, a
    signature is invalid, or protected file-system state was tampered
    with.  Treat this as evidence of an attack, not a transient fault.
    """


class AttestationError(SecureCloudError):
    """Remote or local attestation of an enclave failed.

    Raised when a quote's signature is invalid, the reported measurement
    does not match the expected one, or the attested platform is not
    trusted by the verification service.
    """


class CapacityError(SecureCloudError):
    """A resource request exceeded available capacity.

    Raised by the EPC allocator, the container engine, and the GenPack
    scheduler when a placement or allocation cannot be satisfied.
    """


class ConfigurationError(SecureCloudError):
    """Invalid or inconsistent configuration was supplied."""


class EnclaveError(SecureCloudError):
    """An enclave operation failed (bad ECALL, destroyed enclave, ...)."""


class SchedulingError(SecureCloudError):
    """The scheduler could not produce a valid placement."""


class TransportError(SecureCloudError):
    """A simulated network channel failed (handshake, framing, routing)."""
