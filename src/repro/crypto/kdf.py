"""HKDF (RFC 5869) key derivation over HMAC-SHA256."""

from repro.crypto.primitives import hmac_sha256

_HASH_LEN = 32


def hkdf_extract(salt, input_key_material):
    """Extract a pseudo-random key from input key material."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key, info, length):
    """Expand a PRK into ``length`` bytes of output key material."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    produced = 0
    while produced < length:
        previous = hmac_sha256(
            pseudo_random_key, previous + info + bytes([counter])
        )
        blocks.append(previous)
        produced += len(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material, info, length=32, salt=b""):
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
