"""Finite-field Diffie-Hellman key agreement (RFC 3526 group 14)."""

from repro.crypto.kdf import hkdf
from repro.crypto.primitives import SystemRandomSource

# RFC 3526, 2048-bit MODP group.
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
DH_GENERATOR = 2
_SECRET_BITS = 256


class DhKeyPair:
    """An ephemeral Diffie-Hellman key pair.

    >>> a, b = DhKeyPair.generate(), DhKeyPair.generate()
    >>> a.shared_key(b.public_value) == b.shared_key(a.public_value)
    True
    """

    def __init__(self, private_value, prime=DH_PRIME, generator=DH_GENERATOR):
        if not 1 < private_value < prime - 1:
            raise ValueError("private value out of range")
        self._private = private_value
        self.prime = prime
        self.generator = generator
        self.public_value = pow(generator, private_value, prime)

    @classmethod
    def generate(cls, random_source=None):
        """Draw a fresh ephemeral key pair."""
        source = random_source or SystemRandomSource()
        private = 2 + source.randbits(_SECRET_BITS)
        return cls(private)

    def shared_key(self, peer_public_value, info=b"securecloud-dh"):
        """Derive the 32-byte shared key with a peer's public value."""
        if not 1 < peer_public_value < self.prime - 1:
            raise ValueError("peer public value out of range")
        secret = pow(peer_public_value, self._private, self.prime)
        width = (self.prime.bit_length() + 7) // 8
        return hkdf(secret.to_bytes(width, "big"), info, length=32)
