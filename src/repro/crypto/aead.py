"""Authenticated encryption with associated data (AEAD).

Encrypt-then-MAC over an HMAC-SHA256 counter-mode keystream:

- encryption key and MAC key are derived independently from the AEAD key;
- the tag covers ``nonce || len(aad) || aad || ciphertext`` so truncation
  and aad-swapping attacks are caught;
- nonces are 16 random bytes drawn per encryption (collision probability
  negligible at simulation scales).

This mirrors AES-GCM's interface: :meth:`AeadKey.encrypt` returns a
self-contained :class:`Ciphertext`, and :meth:`AeadKey.decrypt` raises
:class:`~repro.errors.IntegrityError` on any tampering.
"""

from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.crypto.primitives import (
    SystemRandomSource,
    constant_time_equal,
    hmac_sha256,
    keystream,
    xor_bytes,
)

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32

_ENC_LABEL = b"securecloud-aead-enc"
_MAC_LABEL = b"securecloud-aead-mac"


@dataclass(frozen=True)
class Ciphertext:
    """A self-contained AEAD ciphertext: nonce, payload, tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self):
        """Serialise for storage or transmission."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw):
        """Parse a blob produced by :meth:`to_bytes`."""
        if len(raw) < NONCE_SIZE + TAG_SIZE:
            raise IntegrityError("ciphertext too short")
        return cls(
            nonce=raw[:NONCE_SIZE],
            tag=raw[NONCE_SIZE : NONCE_SIZE + TAG_SIZE],
            body=raw[NONCE_SIZE + TAG_SIZE :],
        )

    def __len__(self):
        return NONCE_SIZE + TAG_SIZE + len(self.body)


class AeadKey:
    """A symmetric AEAD key.

    >>> key = AeadKey.generate()
    >>> ct = key.encrypt(b"secret", aad=b"header")
    >>> key.decrypt(ct, aad=b"header")
    b'secret'
    """

    def __init__(self, key_bytes, random_source=None):
        if len(key_bytes) != KEY_SIZE:
            raise ValueError("AEAD key must be %d bytes" % KEY_SIZE)
        self._key = bytes(key_bytes)
        self._enc_key = hmac_sha256(self._key, _ENC_LABEL)
        self._mac_key = hmac_sha256(self._key, _MAC_LABEL)
        self._random = random_source or SystemRandomSource()

    @classmethod
    def generate(cls, random_source=None):
        """Create a fresh random key."""
        source = random_source or SystemRandomSource()
        return cls(source.bytes(KEY_SIZE), random_source=source)

    @property
    def key_bytes(self):
        """The raw key material (for wrapping/sealing)."""
        return self._key

    def fingerprint(self):
        """A public identifier for this key (safe to log)."""
        return hmac_sha256(b"securecloud-key-fingerprint", self._key)[:8].hex()

    def _tag(self, nonce, aad, body):
        header = nonce + len(aad).to_bytes(8, "big") + aad
        return hmac_sha256(self._mac_key, header + body)

    def encrypt(self, plaintext, aad=b"", nonce=None):
        """Encrypt and authenticate ``plaintext`` binding ``aad``."""
        if nonce is None:
            nonce = self._random.bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError("nonce must be %d bytes" % NONCE_SIZE)
        body = xor_bytes(plaintext, keystream(self._enc_key, nonce, len(plaintext)))
        return Ciphertext(nonce=nonce, body=body, tag=self._tag(nonce, aad, body))

    def decrypt(self, ciphertext, aad=b""):
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        expected = self._tag(ciphertext.nonce, aad, ciphertext.body)
        if not constant_time_equal(expected, ciphertext.tag):
            raise IntegrityError("AEAD tag verification failed")
        return xor_bytes(
            ciphertext.body,
            keystream(self._enc_key, ciphertext.nonce, len(ciphertext.body)),
        )

    def __eq__(self, other):
        return isinstance(other, AeadKey) and constant_time_equal(
            self._key, other._key
        )

    def __hash__(self):
        return hash(self._key)
