"""Authenticated encryption with associated data (AEAD).

Encrypt-then-MAC over an HMAC-SHA256 counter-mode keystream:

- encryption key and MAC key are derived independently from the AEAD key;
- the tag covers ``nonce || len(aad) || aad || ciphertext`` so truncation
  and aad-swapping attacks are caught;
- nonces are 16 random bytes drawn per encryption (collision probability
  negligible at simulation scales).

This mirrors AES-GCM's interface: :meth:`AeadKey.encrypt` returns a
self-contained :class:`Ciphertext`, and :meth:`AeadKey.decrypt` raises
:class:`~repro.errors.IntegrityError` on any tampering.

For bulk data the per-record nonce+tag framing (48 bytes) dominates small
records, and every record pays its own MAC finalisation.  The batch API
(:meth:`AeadKey.encrypt_batch` / :meth:`AeadKey.decrypt_batch`) seals many
records into one :class:`SealedBatch` frame: one nonce, one keystream
pass over the length-prefixed concatenation (a single-call SHAKE-256
XOF stream -- the batch plane is new, so it is free to use the fastest
PRF available), and one tag over the whole frame.  The framing is
versioned (magic ``SB1``) and domain-separated
from single-record tags, so a batch can never verify as a
:class:`Ciphertext` or vice versa.

Payloads larger than one chunk are sealed *chunked* (magic ``SB2``):
the body keystream is generated per chunk from derived per-chunk
material (see :mod:`repro.crypto.chunked`), optionally across a
process pool, and the frame carries a manifest of per-chunk sizes and
ciphertext digests.  The single AEAD tag covers the manifest together
with the chunk count and chunk size, so truncation, chunk reordering,
duplication, and cross-payload splicing all fail closed; the ciphertext
is byte-identical for a fixed key/nonce/chunk-size regardless of the
worker count.  Sub-chunk payloads keep the exact ``SB1`` bytes they
always produced -- auto-selection never changes small-record framing.
"""

from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.crypto.chunked import (
    DEFAULT_CHUNK_SIZE,
    build_manifest,
    chunked_keystream_xor,
    verify_manifest,
)
from repro.crypto.primitives import (
    SystemRandomSource,
    constant_time_equal,
    hmac_context,
    hmac_sha256,
    keystream_xor,
    xof_keystream_xor,
)

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32

BATCH_MAGIC = b"SB1"
CHUNKED_MAGIC = b"SB2"
_LEN_SIZE = 4

_ENC_LABEL = b"securecloud-aead-enc"
_MAC_LABEL = b"securecloud-aead-mac"
_FINGERPRINT_LABEL = b"securecloud-key-fingerprint"


@dataclass(frozen=True)
class Ciphertext:
    """A self-contained AEAD ciphertext: nonce, payload, tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self):
        """Serialise for storage or transmission."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw):
        """Parse a blob produced by :meth:`to_bytes`."""
        if len(raw) < NONCE_SIZE + TAG_SIZE:
            raise IntegrityError("ciphertext too short")
        return cls(
            nonce=raw[:NONCE_SIZE],
            tag=raw[NONCE_SIZE : NONCE_SIZE + TAG_SIZE],
            body=raw[NONCE_SIZE + TAG_SIZE :],
        )

    def __len__(self):
        return NONCE_SIZE + TAG_SIZE + len(self.body)


@dataclass(frozen=True, eq=True)
class SealedBatch:
    """Many records sealed as one frame: one nonce, one tag.

    ``body`` is the keystream-encrypted concatenation of
    ``len(record) || record`` for every record; ``count`` is
    authenticated (it participates in the tag header).

    A *chunked* batch (``chunk_size > 0``, wire magic ``SB2``) also
    carries ``manifest``: per body chunk, its size and the SHA-256 of
    its ciphertext, in order.  The tag then covers the manifest (plus
    count and chunk size) instead of the raw body -- the body is held
    to the authenticated manifest chunk by chunk, which is what lets
    verification and de-keystreaming run per chunk in parallel.
    """

    nonce: bytes
    body: bytes
    tag: bytes
    count: int
    chunk_size: int = 0
    manifest: bytes = b""

    def to_bytes(self):
        """Serialise.

        ``SB1``: magic || count || nonce || tag || body.
        ``SB2``: magic || count || chunk_size || manifest_len || nonce
        || tag || manifest || body.  Built with one join so a
        ``memoryview`` body (the zero-copy decode path) serialises
        without an intermediate copy per ``+``.
        """
        if self.chunk_size:
            return b"".join((
                CHUNKED_MAGIC,
                self.count.to_bytes(4, "big"),
                self.chunk_size.to_bytes(4, "big"),
                len(self.manifest).to_bytes(4, "big"),
                self.nonce,
                self.tag,
                self.manifest,
                self.body,
            ))
        return b"".join((
            BATCH_MAGIC,
            self.count.to_bytes(4, "big"),
            self.nonce,
            self.tag,
            self.body,
        ))

    @classmethod
    def from_bytes(cls, raw):
        """Parse a blob produced by :meth:`to_bytes`.

        The body is kept as a ``memoryview`` into ``raw`` -- decode
        adds no ciphertext copy; the only copy on the open path is the
        per-record slice handed to the consumer.
        """
        magic = bytes(raw[: len(BATCH_MAGIC)])
        if magic == CHUNKED_MAGIC:
            header = len(CHUNKED_MAGIC) + 12 + NONCE_SIZE + TAG_SIZE
            if len(raw) < header:
                raise IntegrityError("sealed batch header truncated")
            view = memoryview(raw)
            offset = len(CHUNKED_MAGIC)
            count = int.from_bytes(view[offset : offset + 4], "big")
            chunk_size = int.from_bytes(view[offset + 4 : offset + 8], "big")
            manifest_len = int.from_bytes(view[offset + 8 : offset + 12], "big")
            offset += 12
            if chunk_size < 1:
                raise IntegrityError("chunked batch with zero chunk size")
            nonce = bytes(view[offset : offset + NONCE_SIZE])
            offset += NONCE_SIZE
            tag = bytes(view[offset : offset + TAG_SIZE])
            offset += TAG_SIZE
            if len(raw) - offset < manifest_len:
                raise IntegrityError("chunk manifest truncated")
            manifest = bytes(view[offset : offset + manifest_len])
            return cls(
                nonce=nonce,
                body=view[offset + manifest_len :],
                tag=tag,
                count=count,
                chunk_size=chunk_size,
                manifest=manifest,
            )
        header = len(BATCH_MAGIC) + 4 + NONCE_SIZE + TAG_SIZE
        if len(raw) < header or magic != BATCH_MAGIC:
            raise IntegrityError("not a sealed batch")
        view = memoryview(raw)
        offset = len(BATCH_MAGIC)
        count = int.from_bytes(view[offset : offset + 4], "big")
        offset += 4
        nonce = bytes(view[offset : offset + NONCE_SIZE])
        offset += NONCE_SIZE
        tag = bytes(view[offset : offset + TAG_SIZE])
        offset += TAG_SIZE
        return cls(nonce=nonce, body=view[offset:], tag=tag, count=count)

    @classmethod
    def is_batch(cls, raw):
        """Whether ``raw`` carries either batch framing magic."""
        return bytes(raw[: len(BATCH_MAGIC)]) in (BATCH_MAGIC, CHUNKED_MAGIC)

    def __len__(self):
        if self.chunk_size:
            return (
                len(CHUNKED_MAGIC) + 12 + NONCE_SIZE + TAG_SIZE
                + len(self.manifest) + len(self.body)
            )
        return len(BATCH_MAGIC) + 4 + NONCE_SIZE + TAG_SIZE + len(self.body)


def _frame_records(payloads):
    pieces = []
    for payload in payloads:
        pieces.append(len(payload).to_bytes(_LEN_SIZE, "big"))
        pieces.append(payload)
    return b"".join(pieces)


def _unframe_records(frame, count):
    view = memoryview(frame)
    records = []
    for _ in range(count):
        if len(view) < _LEN_SIZE:
            raise IntegrityError("sealed batch record framing truncated")
        length = int.from_bytes(view[:_LEN_SIZE], "big")
        view = view[_LEN_SIZE:]
        if len(view) < length:
            raise IntegrityError("sealed batch record framing truncated")
        records.append(bytes(view[:length]))
        view = view[length:]
    if len(view):
        raise IntegrityError("trailing bytes after sealed batch records")
    return records


class AeadKey:
    """A symmetric AEAD key.

    >>> key = AeadKey.generate()
    >>> ct = key.encrypt(b"secret", aad=b"header")
    >>> key.decrypt(ct, aad=b"header")
    b'secret'
    """

    def __init__(self, key_bytes, random_source=None):
        if len(key_bytes) != KEY_SIZE:
            raise ValueError("AEAD key must be %d bytes" % KEY_SIZE)
        self._key = bytes(key_bytes)
        self._enc_key = hmac_sha256(self._key, _ENC_LABEL)
        self._mac_key = hmac_sha256(self._key, _MAC_LABEL)
        # The MAC key schedule is paid once; every tag copies this.
        self._mac_context = hmac_context(self._mac_key)
        self._fingerprint_digest = hmac_sha256(_FINGERPRINT_LABEL, self._key)
        self._random = random_source or SystemRandomSource()

    @classmethod
    def generate(cls, random_source=None):
        """Create a fresh random key."""
        source = random_source or SystemRandomSource()
        return cls(source.bytes(KEY_SIZE), random_source=source)

    @property
    def key_bytes(self):
        """The raw key material (for wrapping/sealing)."""
        return self._key

    def fingerprint(self):
        """A public identifier for this key (safe to log)."""
        return self._fingerprint_digest[:8].hex()

    def _tag(self, nonce, aad, body):
        ctx = self._mac_context.copy()
        ctx.update(nonce + len(aad).to_bytes(8, "big") + aad)
        ctx.update(body)
        return ctx.digest()

    def _batch_tag(self, nonce, aad, count, body):
        # Domain-separated from single-record tags by the framing magic
        # and the authenticated record count.
        ctx = self._mac_context.copy()
        ctx.update(
            BATCH_MAGIC
            + count.to_bytes(4, "big")
            + nonce
            + len(aad).to_bytes(8, "big")
            + aad
        )
        ctx.update(body)
        return ctx.digest()

    def _chunked_tag(self, nonce, aad, count, chunk_size, manifest):
        # The chunked tag authenticates the *manifest*, not the body:
        # every body chunk is separately held to its authenticated size
        # and digest, so body integrity follows transitively and the
        # digest checks can run per chunk (in parallel).  The SB2 magic
        # and the chunk size in the header domain-separate this from
        # both SB1 batch tags and single-record tags.
        ctx = self._mac_context.copy()
        ctx.update(
            CHUNKED_MAGIC
            + count.to_bytes(4, "big")
            + chunk_size.to_bytes(4, "big")
            + nonce
            + len(aad).to_bytes(8, "big")
            + aad
        )
        ctx.update(manifest)
        return ctx.digest()

    def encrypt(self, plaintext, aad=b"", nonce=None):
        """Encrypt and authenticate ``plaintext`` binding ``aad``."""
        if nonce is None:
            nonce = self._random.bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError("nonce must be %d bytes" % NONCE_SIZE)
        body = keystream_xor(self._enc_key, nonce, plaintext)
        return Ciphertext(nonce=nonce, body=body, tag=self._tag(nonce, aad, body))

    def decrypt(self, ciphertext, aad=b""):
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        expected = self._tag(ciphertext.nonce, aad, ciphertext.body)
        if not constant_time_equal(expected, ciphertext.tag):
            raise IntegrityError("AEAD tag verification failed")
        return keystream_xor(self._enc_key, ciphertext.nonce, ciphertext.body)

    def encrypt_batch(self, payloads, aad=b"", nonce=None, chunk_size=None,
                      workers=None):
        """Seal a sequence of records as one :class:`SealedBatch`.

        Equivalent in confidentiality/integrity to encrypting each
        record separately, but pays one nonce, one keystream setup, and
        one tag for the whole batch.

        ``chunk_size`` selects the framing: ``None`` (default)
        auto-selects -- frames larger than one default chunk are sealed
        chunked (``SB2``), smaller frames keep the byte-identical
        serial ``SB1`` path; ``0`` forces serial; a positive value
        forces chunked at that size.  ``workers > 1`` spreads chunk
        keystreams over the process pool (output bytes are identical
        either way).
        """
        payloads = list(payloads)
        if nonce is None:
            nonce = self._random.bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError("nonce must be %d bytes" % NONCE_SIZE)
        frame = _frame_records(payloads)
        if chunk_size is None:
            chunk_size = (
                DEFAULT_CHUNK_SIZE if len(frame) > DEFAULT_CHUNK_SIZE else 0
            )
        if chunk_size:
            body = chunked_keystream_xor(
                self._enc_key, nonce, frame, chunk_size, workers
            )
            manifest = build_manifest(body, chunk_size)
            tag = self._chunked_tag(
                nonce, aad, len(payloads), chunk_size, manifest
            )
            return SealedBatch(
                nonce=nonce, body=body, tag=tag, count=len(payloads),
                chunk_size=chunk_size, manifest=manifest,
            )
        body = xof_keystream_xor(self._enc_key, nonce, frame)
        tag = self._batch_tag(nonce, aad, len(payloads), body)
        return SealedBatch(nonce=nonce, body=body, tag=tag, count=len(payloads))

    def decrypt_batch(self, batch, aad=b"", workers=None):
        """Verify and open a :class:`SealedBatch`; returns the records.

        Chunked batches verify the tag over the manifest first, then
        hold every body chunk to its authenticated size and digest, and
        only then de-keystream -- nothing about the plaintext is
        computed from unauthenticated bytes.
        """
        if batch.chunk_size:
            expected = self._chunked_tag(
                batch.nonce, aad, batch.count, batch.chunk_size, batch.manifest
            )
            if not constant_time_equal(expected, batch.tag):
                raise IntegrityError("sealed batch tag verification failed")
            verify_manifest(batch.body, batch.chunk_size, batch.manifest)
            frame = chunked_keystream_xor(
                self._enc_key, batch.nonce, batch.body, batch.chunk_size,
                workers,
            )
            return _unframe_records(frame, batch.count)
        expected = self._batch_tag(batch.nonce, aad, batch.count, batch.body)
        if not constant_time_equal(expected, batch.tag):
            raise IntegrityError("sealed batch tag verification failed")
        frame = xof_keystream_xor(self._enc_key, batch.nonce, batch.body)
        return _unframe_records(frame, batch.count)

    def __eq__(self, other):
        return isinstance(other, AeadKey) and constant_time_equal(
            self._key, other._key
        )

    def __hash__(self):
        # Hash the derived fingerprint digest, never the raw key: Python's
        # hash of bytes is observable (dict iteration order, timing) and
        # must not be a function of key material.
        return hash(self._fingerprint_digest)
