"""Authenticated encryption with associated data (AEAD).

Encrypt-then-MAC over an HMAC-SHA256 counter-mode keystream:

- encryption key and MAC key are derived independently from the AEAD key;
- the tag covers ``nonce || len(aad) || aad || ciphertext`` so truncation
  and aad-swapping attacks are caught;
- nonces are 16 random bytes drawn per encryption (collision probability
  negligible at simulation scales).

This mirrors AES-GCM's interface: :meth:`AeadKey.encrypt` returns a
self-contained :class:`Ciphertext`, and :meth:`AeadKey.decrypt` raises
:class:`~repro.errors.IntegrityError` on any tampering.

For bulk data the per-record nonce+tag framing (48 bytes) dominates small
records, and every record pays its own MAC finalisation.  The batch API
(:meth:`AeadKey.encrypt_batch` / :meth:`AeadKey.decrypt_batch`) seals many
records into one :class:`SealedBatch` frame: one nonce, one keystream
pass over the length-prefixed concatenation (a single-call SHAKE-256
XOF stream -- the batch plane is new, so it is free to use the fastest
PRF available), and one tag over the whole frame.  The framing is
versioned (magic ``SB1``) and domain-separated
from single-record tags, so a batch can never verify as a
:class:`Ciphertext` or vice versa.
"""

from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.crypto.primitives import (
    SystemRandomSource,
    constant_time_equal,
    hmac_context,
    hmac_sha256,
    keystream_xor,
    xof_keystream_xor,
)

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32

BATCH_MAGIC = b"SB1"
_LEN_SIZE = 4

_ENC_LABEL = b"securecloud-aead-enc"
_MAC_LABEL = b"securecloud-aead-mac"
_FINGERPRINT_LABEL = b"securecloud-key-fingerprint"


@dataclass(frozen=True)
class Ciphertext:
    """A self-contained AEAD ciphertext: nonce, payload, tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self):
        """Serialise for storage or transmission."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw):
        """Parse a blob produced by :meth:`to_bytes`."""
        if len(raw) < NONCE_SIZE + TAG_SIZE:
            raise IntegrityError("ciphertext too short")
        return cls(
            nonce=raw[:NONCE_SIZE],
            tag=raw[NONCE_SIZE : NONCE_SIZE + TAG_SIZE],
            body=raw[NONCE_SIZE + TAG_SIZE :],
        )

    def __len__(self):
        return NONCE_SIZE + TAG_SIZE + len(self.body)


@dataclass(frozen=True)
class SealedBatch:
    """Many records sealed as one frame: one nonce, one tag.

    ``body`` is the keystream-encrypted concatenation of
    ``len(record) || record`` for every record; ``count`` is
    authenticated (it participates in the tag header).
    """

    nonce: bytes
    body: bytes
    tag: bytes
    count: int

    def to_bytes(self):
        """Serialise: magic || count || nonce || tag || body."""
        return (
            BATCH_MAGIC
            + self.count.to_bytes(4, "big")
            + self.nonce
            + self.tag
            + self.body
        )

    @classmethod
    def from_bytes(cls, raw):
        """Parse a blob produced by :meth:`to_bytes`."""
        header = len(BATCH_MAGIC) + 4 + NONCE_SIZE + TAG_SIZE
        if len(raw) < header or raw[: len(BATCH_MAGIC)] != BATCH_MAGIC:
            raise IntegrityError("not a sealed batch")
        offset = len(BATCH_MAGIC)
        count = int.from_bytes(raw[offset : offset + 4], "big")
        offset += 4
        nonce = raw[offset : offset + NONCE_SIZE]
        offset += NONCE_SIZE
        tag = raw[offset : offset + TAG_SIZE]
        offset += TAG_SIZE
        return cls(nonce=nonce, body=raw[offset:], tag=tag, count=count)

    @classmethod
    def is_batch(cls, raw):
        """Whether ``raw`` carries the batch framing magic."""
        return raw[: len(BATCH_MAGIC)] == BATCH_MAGIC

    def __len__(self):
        return len(BATCH_MAGIC) + 4 + NONCE_SIZE + TAG_SIZE + len(self.body)


def _frame_records(payloads):
    pieces = []
    for payload in payloads:
        pieces.append(len(payload).to_bytes(_LEN_SIZE, "big"))
        pieces.append(payload)
    return b"".join(pieces)


def _unframe_records(frame, count):
    view = memoryview(frame)
    records = []
    for _ in range(count):
        if len(view) < _LEN_SIZE:
            raise IntegrityError("sealed batch record framing truncated")
        length = int.from_bytes(view[:_LEN_SIZE], "big")
        view = view[_LEN_SIZE:]
        if len(view) < length:
            raise IntegrityError("sealed batch record framing truncated")
        records.append(bytes(view[:length]))
        view = view[length:]
    if len(view):
        raise IntegrityError("trailing bytes after sealed batch records")
    return records


class AeadKey:
    """A symmetric AEAD key.

    >>> key = AeadKey.generate()
    >>> ct = key.encrypt(b"secret", aad=b"header")
    >>> key.decrypt(ct, aad=b"header")
    b'secret'
    """

    def __init__(self, key_bytes, random_source=None):
        if len(key_bytes) != KEY_SIZE:
            raise ValueError("AEAD key must be %d bytes" % KEY_SIZE)
        self._key = bytes(key_bytes)
        self._enc_key = hmac_sha256(self._key, _ENC_LABEL)
        self._mac_key = hmac_sha256(self._key, _MAC_LABEL)
        # The MAC key schedule is paid once; every tag copies this.
        self._mac_context = hmac_context(self._mac_key)
        self._fingerprint_digest = hmac_sha256(_FINGERPRINT_LABEL, self._key)
        self._random = random_source or SystemRandomSource()

    @classmethod
    def generate(cls, random_source=None):
        """Create a fresh random key."""
        source = random_source or SystemRandomSource()
        return cls(source.bytes(KEY_SIZE), random_source=source)

    @property
    def key_bytes(self):
        """The raw key material (for wrapping/sealing)."""
        return self._key

    def fingerprint(self):
        """A public identifier for this key (safe to log)."""
        return self._fingerprint_digest[:8].hex()

    def _tag(self, nonce, aad, body):
        ctx = self._mac_context.copy()
        ctx.update(nonce + len(aad).to_bytes(8, "big") + aad)
        ctx.update(body)
        return ctx.digest()

    def _batch_tag(self, nonce, aad, count, body):
        # Domain-separated from single-record tags by the framing magic
        # and the authenticated record count.
        ctx = self._mac_context.copy()
        ctx.update(
            BATCH_MAGIC
            + count.to_bytes(4, "big")
            + nonce
            + len(aad).to_bytes(8, "big")
            + aad
        )
        ctx.update(body)
        return ctx.digest()

    def encrypt(self, plaintext, aad=b"", nonce=None):
        """Encrypt and authenticate ``plaintext`` binding ``aad``."""
        if nonce is None:
            nonce = self._random.bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError("nonce must be %d bytes" % NONCE_SIZE)
        body = keystream_xor(self._enc_key, nonce, plaintext)
        return Ciphertext(nonce=nonce, body=body, tag=self._tag(nonce, aad, body))

    def decrypt(self, ciphertext, aad=b""):
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        expected = self._tag(ciphertext.nonce, aad, ciphertext.body)
        if not constant_time_equal(expected, ciphertext.tag):
            raise IntegrityError("AEAD tag verification failed")
        return keystream_xor(self._enc_key, ciphertext.nonce, ciphertext.body)

    def encrypt_batch(self, payloads, aad=b"", nonce=None):
        """Seal a sequence of records as one :class:`SealedBatch`.

        Equivalent in confidentiality/integrity to encrypting each
        record separately, but pays one nonce, one keystream setup, and
        one tag for the whole batch.
        """
        payloads = list(payloads)
        if nonce is None:
            nonce = self._random.bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError("nonce must be %d bytes" % NONCE_SIZE)
        body = xof_keystream_xor(self._enc_key, nonce, _frame_records(payloads))
        tag = self._batch_tag(nonce, aad, len(payloads), body)
        return SealedBatch(nonce=nonce, body=body, tag=tag, count=len(payloads))

    def decrypt_batch(self, batch, aad=b""):
        """Verify and open a :class:`SealedBatch`; returns the records."""
        expected = self._batch_tag(batch.nonce, aad, batch.count, batch.body)
        if not constant_time_equal(expected, batch.tag):
            raise IntegrityError("sealed batch tag verification failed")
        frame = xof_keystream_xor(self._enc_key, batch.nonce, batch.body)
        return _unframe_records(frame, batch.count)

    def __eq__(self, other):
        return isinstance(other, AeadKey) and constant_time_equal(
            self._key, other._key
        )

    def __hash__(self):
        # Hash the derived fingerprint digest, never the raw key: Python's
        # hash of bytes is observable (dict iteration order, timing) and
        # must not be a function of key material.
        return hash(self._fingerprint_digest)
