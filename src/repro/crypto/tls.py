"""A TLS-like authenticated channel.

Implements the handshake SecureCloud components use to talk to each
other and to the configuration service:

1. each side holds an RSA identity key;
2. both exchange ephemeral Diffie-Hellman values, each signed by the
   sender's identity key together with the full transcript so far
   (preventing man-in-the-middle splicing);
3. both derive direction-specific AEAD record keys from the DH secret;
4. records carry a sequence number in their associated data, so replay,
   reordering, and truncation are detected.

An optional ``attestation_payload`` (an SGX quote, serialised) rides in
the server's signed handshake message; the client passes it to a
verification callback before the channel is considered established.
This is how SCF delivery authenticates the *enclave*, not just a key.
"""

from dataclasses import dataclass, field

from repro.errors import IntegrityError, TransportError
from repro.crypto.aead import AeadKey, Ciphertext
from repro.crypto.dh import DhKeyPair
from repro.crypto.kdf import hkdf
from repro.crypto.primitives import sha256


@dataclass
class HandshakeMessage:
    """One side's contribution: DH value, identity, signature, payload."""

    dh_public: int
    identity_fingerprint: str
    signature: int
    attestation_payload: bytes = b""

    def transcript_bytes(self):
        """Canonical bytes covered by the peer's signature."""
        return (
            self.dh_public.to_bytes((self.dh_public.bit_length() + 7) // 8, "big")
            + self.identity_fingerprint.encode("ascii")
            + len(self.attestation_payload).to_bytes(8, "big")
            + self.attestation_payload
        )


@dataclass
class SecureChannel:
    """One endpoint of an established record channel.

    Create pairs with :func:`establish_channel`; use :meth:`seal` to
    produce a record and :meth:`open` to consume the peer's next record.
    """

    send_key: AeadKey
    receive_key: AeadKey
    peer_fingerprint: str
    _send_sequence: int = field(default=0, repr=False)
    _receive_sequence: int = field(default=0, repr=False)

    def seal(self, plaintext, record_type=b"data"):
        """Encrypt ``plaintext`` as the next outgoing record."""
        aad = record_type + b"|" + self._send_sequence.to_bytes(8, "big")
        self._send_sequence += 1
        return self.send_key.encrypt(plaintext, aad=aad).to_bytes()

    def open(self, record, record_type=b"data"):
        """Decrypt the peer's next record; raises on tamper or replay."""
        aad = record_type + b"|" + self._receive_sequence.to_bytes(8, "big")
        try:
            plaintext = self.receive_key.decrypt(
                Ciphertext.from_bytes(record), aad=aad
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "record %d failed authentication (tampered, replayed, or "
                "out of order): %s" % (self._receive_sequence, exc)
            ) from exc
        self._receive_sequence += 1
        return plaintext


def _derive_record_keys(shared_secret, client_hello, server_hello):
    transcript = sha256(
        client_hello.transcript_bytes() + server_hello.transcript_bytes()
    )
    client_key = AeadKey(hkdf(shared_secret, b"c2s|" + transcript))
    server_key = AeadKey(hkdf(shared_secret, b"s2c|" + transcript))
    return client_key, server_key


def establish_channel(
    client_identity,
    server_identity,
    server_attestation_payload=b"",
    verify_server_payload=None,
    client_random_source=None,
    server_random_source=None,
):
    """Run the handshake and return ``(client_channel, server_channel)``.

    ``client_identity``/``server_identity`` are :class:`RsaKeyPair`
    objects.  In a real deployment the two endpoints live in different
    processes; here the handshake is executed in one place but only
    exchanges the messages a network would carry, so every
    authentication property is still enforced end-to-end.

    ``verify_server_payload`` is called with the server's attestation
    payload (after its signature has been checked); it should raise
    :class:`~repro.errors.AttestationError` to reject the peer.
    """
    client_dh = DhKeyPair.generate(client_random_source)
    server_dh = DhKeyPair.generate(server_random_source)

    client_hello = HandshakeMessage(
        dh_public=client_dh.public_value,
        identity_fingerprint=client_identity.public_key.fingerprint(),
        signature=0,
    )
    client_hello.signature = client_identity.sign(client_hello.transcript_bytes())

    # The server signs its own message *and* the client hello, binding
    # the two halves of the handshake together.
    server_hello = HandshakeMessage(
        dh_public=server_dh.public_value,
        identity_fingerprint=server_identity.public_key.fingerprint(),
        signature=0,
        attestation_payload=server_attestation_payload,
    )
    server_transcript = (
        client_hello.transcript_bytes() + server_hello.transcript_bytes()
    )
    server_hello.signature = server_identity.sign(server_transcript)

    # --- client verifies the server ---
    try:
        server_identity.public_key.verify(server_transcript, server_hello.signature)
    except IntegrityError as exc:
        raise TransportError("server handshake signature invalid") from exc
    if verify_server_payload is not None:
        verify_server_payload(server_hello.attestation_payload)

    # --- server verifies the client ---
    try:
        client_identity.public_key.verify(
            client_hello.transcript_bytes(), client_hello.signature
        )
    except IntegrityError as exc:
        raise TransportError("client handshake signature invalid") from exc

    shared = client_dh.shared_key(server_dh.public_value)
    client_key, server_key = _derive_record_keys(shared, client_hello, server_hello)

    client_channel = SecureChannel(
        send_key=client_key,
        receive_key=server_key,
        peer_fingerprint=server_hello.identity_fingerprint,
    )
    server_channel = SecureChannel(
        send_key=server_key,
        receive_key=client_key,
        peer_fingerprint=client_hello.identity_fingerprint,
    )
    return client_channel, server_channel
