"""Cryptographic substrate for the SecureCloud reproduction.

The real system uses AES-GCM inside SGX and TLS between components.
Python's standard library ships no AEAD cipher, so this package builds
one from primitives that *are* available (SHA-256 / HMAC): an
encrypt-then-MAC stream construction with real confidentiality and
integrity round-trip semantics.  Signatures are textbook RSA with
full-domain hashing, and key agreement is finite-field Diffie-Hellman
over the RFC 3526 2048-bit MODP group.

These constructions are faithful in *behaviour* (tampering is detected,
keys must match, handshakes authenticate both ends) and are exactly what
the reproduction needs; they are **not** hardened production
cryptography (no side-channel defences, textbook RSA padding).
"""

from repro.crypto.aead import AeadKey, Ciphertext
from repro.crypto.dh import DhKeyPair, DH_GENERATOR, DH_PRIME
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import (
    DeterministicRandomSource,
    SystemRandomSource,
    constant_time_equal,
    hmac_sha256,
    keystream,
    sha256,
)
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.tls import SecureChannel, establish_channel

__all__ = [
    "AeadKey",
    "Ciphertext",
    "DH_GENERATOR",
    "DH_PRIME",
    "DeterministicRandomSource",
    "DhKeyPair",
    "KeyHierarchy",
    "RsaKeyPair",
    "RsaPublicKey",
    "SecureChannel",
    "SystemRandomSource",
    "constant_time_equal",
    "establish_channel",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "keystream",
    "sha256",
]
