"""Key hierarchy: derive purpose-specific keys from one root secret.

The SCONE client, the FS shield, and the stream shield each need their
own keys.  Deriving them all from a single root via HKDF with distinct
labels means an image creator manages one secret, and compromise of a
derived key does not reveal siblings.
"""

from repro.crypto.aead import AeadKey, KEY_SIZE
from repro.crypto.kdf import hkdf
from repro.crypto.primitives import SystemRandomSource


class KeyHierarchy:
    """A labelled tree of keys rooted in one secret.

    >>> root = KeyHierarchy.generate()
    >>> fs_key = root.aead_key("fs", "volume-0")
    >>> root.aead_key("fs", "volume-0") == fs_key   # deterministic
    True
    >>> root.aead_key("stdio") == fs_key            # independent
    False
    """

    def __init__(self, root_secret):
        if len(root_secret) < 16:
            raise ValueError("root secret must be at least 16 bytes")
        self._root = bytes(root_secret)

    @classmethod
    def generate(cls, random_source=None):
        """Create a hierarchy from a fresh random root."""
        source = random_source or SystemRandomSource()
        return cls(source.bytes(KEY_SIZE))

    def derive_bytes(self, *labels, length=KEY_SIZE):
        """Raw key material for the labelled path."""
        info = b"|".join(str(label).encode("utf-8") for label in labels)
        return hkdf(self._root, b"securecloud-kh|" + info, length=length)

    def aead_key(self, *labels):
        """An :class:`AeadKey` for the labelled path (deterministic)."""
        return AeadKey(self.derive_bytes(*labels))

    def subhierarchy(self, *labels):
        """A child hierarchy whose keys are independent of the parent's."""
        return KeyHierarchy(self.derive_bytes("subtree", *labels))
