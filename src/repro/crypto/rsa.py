"""RSA signatures with full-domain hashing.

Used for enclave quotes (the quoting enclave's attestation key), image
signing, and channel authentication.  Key generation uses Miller-Rabin
primality testing; 1024-bit keys are the default (generation stays fast
in pure Python) and tests may use 512-bit keys.

Signing applies a full-domain hash: the message digest is expanded with
HKDF-style blocks to the modulus width before exponentiation, so the
scheme is deterministic and existentially unforgeable under the usual
FDH assumptions (adequate for a simulation; not hardened).
"""

from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.crypto.primitives import SystemRandomSource, hmac_sha256, sha256

_MILLER_RABIN_ROUNDS = 40
_FDH_LABEL = b"securecloud-rsa-fdh"


def _is_probable_prime(candidate, random_source):
    if candidate < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)
    for prime in small_primes:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate-1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = 2 + random_source.randbits(candidate.bit_length() - 2) % (candidate - 3)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits, random_source):
    while True:
        candidate = random_source.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # full width, odd
        if _is_probable_prime(candidate, random_source):
            return candidate


def _full_domain_hash(message, modulus):
    """Hash ``message`` to an integer in [1, modulus)."""
    width = (modulus.bit_length() + 7) // 8
    digest = sha256(message)
    blocks = []
    produced = 0
    counter = 0
    while produced < width:
        block = hmac_sha256(digest, _FDH_LABEL + counter.to_bytes(4, "big"))
        blocks.append(block)
        produced += len(block)
        counter += 1
    value = int.from_bytes(b"".join(blocks)[:width], "big")
    return (value % (modulus - 2)) + 1


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA verification key (n, e)."""

    modulus: int
    exponent: int

    def verify(self, message, signature):
        """Raise :class:`IntegrityError` unless ``signature`` is valid."""
        if not 0 < signature < self.modulus:
            raise IntegrityError("RSA signature out of range")
        expected = _full_domain_hash(message, self.modulus)
        if pow(signature, self.exponent, self.modulus) != expected:
            raise IntegrityError("RSA signature verification failed")

    def is_valid(self, message, signature):
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(message, signature)
        except IntegrityError:
            return False
        return True

    def fingerprint(self):
        """Stable public identifier of this key."""
        material = self.modulus.to_bytes(
            (self.modulus.bit_length() + 7) // 8, "big"
        ) + self.exponent.to_bytes(8, "big")
        return sha256(material)[:8].hex()


class RsaKeyPair:
    """An RSA signing key pair."""

    def __init__(self, modulus, public_exponent, private_exponent):
        self.public_key = RsaPublicKey(modulus, public_exponent)
        self._private_exponent = private_exponent

    @classmethod
    def generate(cls, bits=1024, random_source=None):
        """Generate a fresh key pair of the given modulus width."""
        if bits < 128:
            raise ValueError("modulus too small to be meaningful")
        source = random_source or SystemRandomSource()
        exponent = 65537
        while True:
            p = _generate_prime(bits // 2, source)
            q = _generate_prime(bits - bits // 2, source)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            try:
                d = pow(exponent, -1, phi)
            except ValueError:
                continue
            return cls(p * q, exponent, d)

    def sign(self, message):
        """Produce a deterministic FDH signature over ``message``."""
        hashed = _full_domain_hash(message, self.public_key.modulus)
        return pow(hashed, self._private_exponent, self.public_key.modulus)
