"""Chunked-parallel sealing: per-chunk keystreams, one manifest, one tag.

Large payloads are split into fixed-size chunks.  Every chunk gets its
own keystream, generated from material *derived* for that chunk alone:

- chunk key  ``HMAC(enc_key, label || nonce || index)`` -- a worker that
  is handed one chunk's key learns nothing about any other chunk or any
  other payload (the base nonce is folded into the derivation);
- chunk nonce ``nonce[:8] || index`` -- the base-nonce-plus-counter
  pattern, so the (key, nonce) pair feeding the XOF is unique per
  (payload, chunk).

Because each chunk's keystream depends only on ``(enc_key, nonce,
index, chunk_size)``, the ciphertext is **byte-identical** for a fixed
key/nonce/chunk-size no matter how many workers computed it -- serial,
thread, or process execution all produce the same bytes, which is what
keeps the chaos determinism gate honest with the pool enabled.

Integrity comes from a *manifest*: per chunk, its size and the SHA-256
digest of its ciphertext, concatenated in chunk order.  The AEAD layer
authenticates the manifest (plus chunk count and chunk size) under a
single tag; the body itself is checked chunk-by-chunk against the
manifest digests.  Truncation changes the last chunk's size or digest,
reordering moves digests out of their authenticated positions,
duplication breaks the size ledger, and splicing a chunk from another
payload produces a foreign digest -- all fail closed before a byte of
plaintext is released.

Real CPU parallelism uses a process pool (``fork`` start method when
available): workers receive only ``(chunk key, chunk nonce, chunk
bytes)`` tuples, never the AEAD key.  The pool is created lazily, kept
for the process lifetime, and sized to the largest worker count
requested.  The virtual cost model (:func:`chunked_seal_cycles`,
:func:`serial_seal_cycles`) mirrors the repository's cycle accounting
so benchmarks report deterministic sealed-bytes-per-virtual-ms numbers
independent of host core count.
"""

import atexit
import hashlib
import os

from repro.errors import IntegrityError
from repro.crypto.primitives import (
    constant_time_equal,
    hmac_sha256,
    xof_keystream_xor,
)


def _registry():
    # Imported lazily: repro.telemetry's package __init__ pulls in the
    # sealed-snapshot module, which imports this package back -- a
    # top-level import here would make crypto unimportable on its own.
    from repro.telemetry.registry import default_registry

    return default_registry()

# Chunks this size balance pool dispatch overhead against parallelism;
# payloads at or below one chunk stay on the serial path automatically.
DEFAULT_CHUNK_SIZE = 256 * 1024

# Manifest entry: 4-byte chunk size || 32-byte ciphertext digest.
DIGEST_SIZE = 32
_SIZE_BYTES = 4
MANIFEST_ENTRY_SIZE = _SIZE_BYTES + DIGEST_SIZE

_CHUNK_KEY_LABEL = b"securecloud-chunk-key"

# --- virtual cost model (cycles on the repo-wide 2.6 GHz clock) ---
#
# Matches the sealing constants the SCBR plane charges
# (repro.scbr.router): a setup per sealed unit plus a per-byte AEAD
# pass.  The chunked path additionally pays a serial per-chunk dispatch
# on the coordinator, so infinite workers do not drive the makespan to
# zero.
CHUNK_SETUP_CYCLES = 2_000
CHUNK_SEAL_CYCLES_PER_BYTE = 4
POOL_DISPATCH_CYCLES = 1_000


def chunk_spans(length, chunk_size):
    """``(offset, size)`` of every chunk covering ``length`` bytes."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if length < 0:
        raise ValueError("length must be non-negative")
    return [
        (offset, min(chunk_size, length - offset))
        for offset in range(0, length, chunk_size)
    ]


def derive_chunk_key(enc_key, nonce, index):
    """Per-chunk keystream key; binds the base nonce and chunk index.

    Workers get this 32-byte derivation, never ``enc_key``: compromising
    a worker leaks at most one chunk's keystream of one payload.
    """
    return hmac_sha256(
        enc_key, _CHUNK_KEY_LABEL + bytes(nonce) + index.to_bytes(8, "big")
    )


def chunk_nonce(nonce, index):
    """Base-nonce-plus-counter: first 8 nonce bytes, then the index."""
    return bytes(nonce[:8]) + index.to_bytes(8, "big")


def _seal_chunk(task):
    """Pool worker: XOR one chunk with its derived keystream."""
    key, nonce, data = task
    return xof_keystream_xor(key, nonce, data)


# One process pool per interpreter, sized to the largest request; fork
# (when the platform has it) skips re-importing the world per worker.
_POOL = None
_POOL_WORKERS = 0


def _process_pool(workers):
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing

        if _POOL is not None:
            _POOL.shutdown(wait=False)
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        _POOL = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
        )
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool():
    """Tear down the shared process pool (atexit; tests may call it)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def resolve_workers(workers):
    """Normalise a ``workers`` argument: ``None``/0/1 mean serial."""
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return int(workers)


def chunked_keystream_xor(enc_key, nonce, data, chunk_size=DEFAULT_CHUNK_SIZE,
                          workers=None):
    """XOR ``data`` against the chunked keystream (its own inverse).

    ``data`` may be any bytes-like object; chunks are sliced as
    ``memoryview``\\ s, so the serial path never copies the payload.
    With ``workers > 1`` chunks are dispatched round-robin to the
    process pool (each task ships only derived per-chunk material); the
    output bytes are identical either way.
    """
    view = memoryview(data)
    spans = chunk_spans(len(view), chunk_size)
    if not spans:
        return b""
    workers = resolve_workers(workers)
    registry = _registry()
    registry.counter("crypto.chunked_passes").inc()
    registry.counter("crypto.chunks_processed").inc(len(spans))
    registry.counter("crypto.chunked_bytes").inc(len(view))
    registry.histogram("crypto.pool_occupancy").observe(
        min(workers, len(spans))
    )
    if workers == 1 or len(spans) == 1:
        return b"".join(
            xof_keystream_xor(
                derive_chunk_key(enc_key, nonce, index),
                chunk_nonce(nonce, index),
                view[offset : offset + size],
            )
            for index, (offset, size) in enumerate(spans)
        )
    pool = _process_pool(workers)
    tasks = [
        (
            derive_chunk_key(enc_key, nonce, index),
            chunk_nonce(nonce, index),
            bytes(view[offset : offset + size]),
        )
        for index, (offset, size) in enumerate(spans)
    ]
    return b"".join(pool.map(_seal_chunk, tasks))


def build_manifest(body, chunk_size):
    """Size-and-digest ledger of ``body``'s ciphertext chunks."""
    view = memoryview(body)
    pieces = []
    for offset, size in chunk_spans(len(view), chunk_size):
        pieces.append(size.to_bytes(_SIZE_BYTES, "big"))
        pieces.append(hashlib.sha256(view[offset : offset + size]).digest())
    return b"".join(pieces)


def verify_manifest(body, chunk_size, manifest):
    """Check ``body`` against an *authenticated* manifest; fail closed.

    The caller must have verified the AEAD tag over the manifest first;
    this function then holds the body to it: chunk count, every chunk
    size, and every ciphertext digest must match, in order.
    """
    view = memoryview(body)
    if len(manifest) % MANIFEST_ENTRY_SIZE:
        raise IntegrityError("chunk manifest length is not a whole ledger")
    spans = chunk_spans(len(view), chunk_size)
    if len(manifest) != len(spans) * MANIFEST_ENTRY_SIZE:
        raise IntegrityError(
            "sealed body carries %d chunks but the manifest lists %d"
            % (len(spans), len(manifest) // MANIFEST_ENTRY_SIZE)
        )
    manifest_view = memoryview(manifest)
    for index, (offset, size) in enumerate(spans):
        entry = manifest_view[
            index * MANIFEST_ENTRY_SIZE : (index + 1) * MANIFEST_ENTRY_SIZE
        ]
        listed_size = int.from_bytes(entry[:_SIZE_BYTES], "big")
        if listed_size != size:
            raise IntegrityError(
                "chunk %d is %d bytes but the manifest lists %d "
                "(truncated or duplicated chunk)" % (index, size, listed_size)
            )
        digest = hashlib.sha256(view[offset : offset + size]).digest()
        if not constant_time_equal(digest, bytes(entry[_SIZE_BYTES:])):
            raise IntegrityError(
                "chunk %d digest mismatch (tampered, reordered, or "
                "spliced from another payload)" % index
            )


def serial_seal_cycles(length):
    """Virtual cycles to seal ``length`` bytes in one serial pass."""
    return CHUNK_SETUP_CYCLES + CHUNK_SEAL_CYCLES_PER_BYTE * length


def chunked_seal_cycles(length, chunk_size=DEFAULT_CHUNK_SIZE, workers=1):
    """Virtual makespan of a chunked-parallel seal.

    Chunks are assigned round-robin (matching the dispatch order of
    :func:`chunked_keystream_xor`); the coordinator pays a serial
    dispatch per chunk and the makespan is that serial cost plus the
    most-loaded worker's keystream work.  Deterministic by construction
    -- the model depends on sizes and worker count, never on host
    scheduling -- so gated benchmarks stay stable.
    """
    workers = resolve_workers(workers)
    spans = chunk_spans(length, chunk_size)
    if not spans:
        return 0
    loads = [0] * min(workers, len(spans))
    for index, (_offset, size) in enumerate(spans):
        loads[index % len(loads)] += (
            CHUNK_SETUP_CYCLES + CHUNK_SEAL_CYCLES_PER_BYTE * size
        )
    return POOL_DISPATCH_CYCLES * len(spans) + max(loads)


def host_workers():
    """Worker count for this host (benchmarks' ``workers=None`` case)."""
    return os.cpu_count() or 1
