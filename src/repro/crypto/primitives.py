"""Hash, MAC, keystream, and randomness primitives."""

import hashlib
import hmac as _hmac
import os
import random


def sha256(data):
    """SHA-256 digest of ``data`` (bytes in, 32 bytes out)."""
    return hashlib.sha256(data).digest()


def sha256_hex(data):
    """SHA-256 digest as a hex string (content addressing, identities)."""
    return hashlib.sha256(data).hexdigest()


def hmac_sha256(key, data):
    """HMAC-SHA256 tag of ``data`` under ``key`` (32 bytes)."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a, b):
    """Timing-safe comparison for MACs and hashes."""
    return _hmac.compare_digest(a, b)


def keystream(key, nonce, length):
    """Deterministic keystream: HMAC-SHA256 in counter mode.

    Block i is ``HMAC(key, nonce || i)``; the construction is a PRF in
    counter mode, i.e. a stream cipher keyed by (key, nonce).  Reusing a
    (key, nonce) pair leaks plaintext XOR, exactly as with AES-CTR, so
    callers must use fresh nonces (the AEAD layer does).
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = _hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def xor_bytes(data, stream):
    """XOR ``data`` with a same-length ``stream``."""
    if len(data) != len(stream):
        raise ValueError("xor operands must have equal length")
    return bytes(a ^ b for a, b in zip(data, stream))


class SystemRandomSource:
    """Randomness from the operating system (default in production)."""

    def bytes(self, n):
        """``n`` unpredictable bytes."""
        return os.urandom(n)

    def randbits(self, k):
        """A ``k``-bit random integer."""
        return int.from_bytes(os.urandom((k + 7) // 8), "big") >> (
            (8 - k % 8) % 8
        )


class DeterministicRandomSource:
    """Seeded randomness for reproducible tests and benchmarks.

    Never use outside tests: its output is predictable by construction.
    """

    def __init__(self, seed=0):
        self._random = random.Random(seed)

    def bytes(self, n):
        """``n`` deterministic pseudo-random bytes."""
        if n == 0:
            return b""
        return self._random.getrandbits(8 * n).to_bytes(n, "big")

    def randbits(self, k):
        """A deterministic ``k``-bit integer."""
        return self._random.getrandbits(k)
