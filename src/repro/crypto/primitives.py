"""Hash, MAC, keystream, and randomness primitives."""

import hashlib
import hmac as _hmac
import os
import random


def sha256(data):
    """SHA-256 digest of ``data`` (bytes in, 32 bytes out)."""
    return hashlib.sha256(data).digest()


def sha256_hex(data):
    """SHA-256 digest as a hex string (content addressing, identities)."""
    return hashlib.sha256(data).hexdigest()


def hmac_sha256(key, data):
    """HMAC-SHA256 tag of ``data`` under ``key`` (32 bytes)."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a, b):
    """Timing-safe comparison for MACs and hashes."""
    return _hmac.compare_digest(a, b)


def hmac_context(key):
    """A reusable HMAC-SHA256 context with ``key`` already absorbed.

    HMAC key setup costs two SHA-256 compressions (ipad/opad); hot paths
    that MAC many messages under one key pay it once here and then
    ``.copy()`` the returned context per message.
    """
    return _hmac.new(key, b"", hashlib.sha256)


_HMAC_BLOCK_SIZE = 32

# (key, nonce) -> primed HMAC context with key and nonce absorbed.  The
# cache is tiny and bounded; it exists so back-to-back keystream calls
# under one AEAD key skip the HMAC key schedule entirely.
_KEYSTREAM_CACHE = {}
_KEYSTREAM_CACHE_LIMIT = 64


def _keystream_context(key, nonce):
    cached = _KEYSTREAM_CACHE.get((key, nonce))
    if cached is None:
        if len(_KEYSTREAM_CACHE) >= _KEYSTREAM_CACHE_LIMIT:
            _KEYSTREAM_CACHE.clear()
        cached = _hmac.new(key, nonce, hashlib.sha256)
        _KEYSTREAM_CACHE[(key, nonce)] = cached
    return cached


def keystream(key, nonce, length):
    """Deterministic keystream: HMAC-SHA256 in counter mode.

    Block i is ``HMAC(key, nonce || i)``; the construction is a PRF in
    counter mode, i.e. a stream cipher keyed by (key, nonce).  Reusing a
    (key, nonce) pair leaks plaintext XOR, exactly as with AES-CTR, so
    callers must use fresh nonces (the AEAD layer does).

    The key schedule and the nonce are absorbed into one HMAC context
    which is then ``.copy()``-ed per 32-byte counter block -- the copy
    skips both SHA-256 init compressions, roughly doubling throughput
    over a fresh ``hmac.new`` per block.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        return b""
    base = _keystream_context(key, nonce)
    block_count = -(-length // _HMAC_BLOCK_SIZE)
    blocks = [None] * block_count
    for counter in range(block_count):
        ctx = base.copy()
        ctx.update(counter.to_bytes(8, "big"))
        blocks[counter] = ctx.digest()
    return b"".join(blocks)[:length]


def xor_bytes(data, stream):
    """XOR ``data`` with a same-length ``stream``.

    Both operands are folded into Python big integers so the XOR runs in
    C over machine words instead of byte-by-byte in the interpreter.
    """
    if len(data) != len(stream):
        raise ValueError("xor operands must have equal length")
    if not data:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


def keystream_xor(key, nonce, data):
    """Encrypt/decrypt ``data`` in place of ``xor_bytes(data, keystream(...))``.

    Fusing the two saves the intermediate allocation and lets callers
    stay oblivious to the keystream length bookkeeping; the operation is
    its own inverse.
    """
    if not data:
        return b""
    return xor_bytes(data, keystream(key, nonce, len(data)))


_XOF_LABEL = b"securecloud-xof-keystream"


def xof_keystream(key, nonce, length):
    """High-throughput keystream: SHAKE-256 as a keyed XOF.

    The sponge absorbs ``label || len(key) || key || nonce`` and squeezes
    the entire ``length``-byte stream in a single C call -- no per-block
    Python overhead at all, which is an order of magnitude faster than
    the HMAC-CTR construction above.  Like :func:`keystream` it is a PRF
    of (key, nonce): reusing a pair leaks plaintext XOR.  XOF output is a
    stream, so the prefix property holds (``xof_keystream(k, n, a) ==
    xof_keystream(k, n, b)[:a]`` for ``a <= b``).

    This is the data plane of the *new, versioned* batch framing; the
    legacy single-record format keeps :func:`keystream` for wire
    compatibility.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        return b""
    ctx = hashlib.shake_256()
    ctx.update(_XOF_LABEL)
    ctx.update(len(key).to_bytes(2, "big"))
    ctx.update(key)
    ctx.update(nonce)
    return ctx.digest(length)


def xof_keystream_xor(key, nonce, data):
    """Fused encrypt/decrypt against :func:`xof_keystream` (own inverse)."""
    if not data:
        return b""
    return xor_bytes(data, xof_keystream(key, nonce, len(data)))


class SystemRandomSource:
    """Randomness from the operating system (default in production)."""

    def bytes(self, n):
        """``n`` unpredictable bytes."""
        return os.urandom(n)

    def randbits(self, k):
        """A ``k``-bit random integer."""
        return int.from_bytes(os.urandom((k + 7) // 8), "big") >> (
            (8 - k % 8) % 8
        )


class DeterministicRandomSource:
    """Seeded randomness for reproducible tests and benchmarks.

    Never use outside tests: its output is predictable by construction.
    """

    def __init__(self, seed=0):
        self._random = random.Random(seed)

    def bytes(self, n):
        """``n`` deterministic pseudo-random bytes."""
        if n == 0:
            return b""
        return self._random.getrandbits(8 * n).to_bytes(n, "big")

    def randbits(self, k):
        """A deterministic ``k``-bit integer."""
        return self._random.getrandbits(k)
