"""Workload generation for SCBR experiments.

Generates subscription databases and publication streams with the knobs
the SCBR evaluation varies: number of attributes, constraints per
subscription, attribute popularity skew (Zipf), and selectivity.  With
``containment_fraction`` > 0 a fraction of subscriptions are generated
as *specialisations* of earlier ones (their constraints tightened), so
the containment index has real structure to exploit.
"""

from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.sim.rng import RandomStream

_RANGE_OPS = (Operator.LE, Operator.GE, Operator.LT, Operator.GT)


class ScbrWorkload:
    """Deterministic generator of subscriptions and publications."""

    def __init__(self, seed=0, num_attributes=50, constraints_per_sub=(2, 4),
                 value_range=(0.0, 1000.0), zipf_alpha=0.8,
                 containment_fraction=0.3, eq_fraction=0.15,
                 range_fraction=0.25, num_subscribers=100):
        self.rng = RandomStream(seed).child("scbr")
        self.num_attributes = num_attributes
        self.num_subscribers = num_subscribers
        self.constraints_per_sub = constraints_per_sub
        self.value_range = value_range
        self.zipf_alpha = zipf_alpha
        self.containment_fraction = containment_fraction
        self.eq_fraction = eq_fraction
        self.range_fraction = range_fraction
        self._next_id = 0
        self._history = []

    def _attribute(self):
        return "attr-%03d" % self.rng.zipf(self.num_attributes, self.zipf_alpha)

    def _random_constraint(self, attribute):
        low, high = self.value_range
        draw = self.rng.random()
        if draw < self.eq_fraction:
            return Constraint(
                attribute, Operator.EQ, round(self.rng.uniform(low, high), 3)
            )
        if draw < self.eq_fraction + self.range_fraction:
            a = round(self.rng.uniform(low, high), 3)
            b = round(self.rng.uniform(low, high), 3)
            return Constraint.range_between(attribute, min(a, b), max(a, b))
        value = round(self.rng.uniform(low, high), 3)
        return Constraint(attribute, self.rng.choice(_RANGE_OPS), value)

    def _fresh_subscription(self):
        count = self.rng.randint(*self.constraints_per_sub)
        constraints = {}
        while len(constraints) < count:
            attribute = self._attribute()
            if attribute not in constraints:
                constraints[attribute] = self._random_constraint(attribute)
        return list(constraints.values())

    def _specialise(self, parent):
        """Tighten a parent's constraints so the child is covered by it."""
        low, high = self.value_range
        constraints = []
        for constraint in parent.constraints.values():
            if constraint.operator in (Operator.LE, Operator.LT):
                tightened = Constraint(
                    constraint.attribute,
                    constraint.operator,
                    round(self.rng.uniform(low, constraint.value), 3),
                )
            elif constraint.operator in (Operator.GE, Operator.GT):
                tightened = Constraint(
                    constraint.attribute,
                    constraint.operator,
                    round(self.rng.uniform(constraint.value, high), 3),
                )
            elif constraint.operator is Operator.RANGE:
                parent_low, parent_high = constraint.value
                a = round(self.rng.uniform(parent_low, parent_high), 3)
                b = round(self.rng.uniform(parent_low, parent_high), 3)
                tightened = Constraint.range_between(
                    constraint.attribute, min(a, b), max(a, b)
                )
            else:
                tightened = constraint
            constraints.append(tightened)
        return constraints

    def subscription(self):
        """Generate the next subscription."""
        if self._history and self.rng.random() < self.containment_fraction:
            parent = self.rng.choice(self._history)
            constraints = self._specialise(parent)
        else:
            constraints = self._fresh_subscription()
        subscription = Subscription(
            "sub-%06d" % self._next_id,
            constraints,
            subscriber="client-%03d" % (self._next_id % self.num_subscribers),
        )
        self._next_id += 1
        if len(self._history) < 512:
            self._history.append(subscription)
        return subscription

    def subscriptions(self, count):
        """Generate ``count`` subscriptions."""
        return [self.subscription() for _ in range(count)]

    def publication(self, payload=b""):
        """Generate a publication valuing a random subset of attributes."""
        low, high = self.value_range
        count = min(self.rng.randint(3, 8), self.num_attributes)
        attributes = {}
        attempts = 0
        while len(attributes) < count and attempts < 20 * count:
            attributes[self._attribute()] = round(self.rng.uniform(low, high), 3)
            attempts += 1
        # Zipf skew can make the tail attributes rare; top up uniformly
        # so the requested attribute count is always reached.
        remaining = [
            "attr-%03d" % i
            for i in range(self.num_attributes)
            if "attr-%03d" % i not in attributes
        ]
        while len(attributes) < count:
            name = remaining.pop(self.rng.randint(0, len(remaining) - 1))
            attributes[name] = round(self.rng.uniform(low, high), 3)
        return Publication(attributes=attributes, payload=payload)

    def publications(self, count):
        """Generate ``count`` publications."""
        return [self.publication() for _ in range(count)]

    def fill_index(self, index, total_bytes):
        """Insert subscriptions until the database reaches ``total_bytes``."""
        target = max(1, total_bytes // index.record_bytes)
        for _ in range(target - len(index)):
            index.insert(self.subscription())
        return index
