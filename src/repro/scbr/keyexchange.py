"""Attested key establishment with the router enclave.

A Diffie-Hellman exchange in which the router's ephemeral public value
is *bound into an SGX quote*: clients verify that (a) the quote chains
to a registered platform, (b) the quoted measurement is the genuine
SCBR router code, and (c) the quoted report data commits to the DH
value they are keying against.  Only then do they derive the shared
AEAD key used for their publications/subscriptions.

A man-in-the-middle substituting its own DH value cannot produce a
matching quote, so clients abort -- the property that lets SCBR route
on plaintext inside the enclave while everything outside stays sealed.
"""

from repro.errors import AttestationError
from repro.crypto.aead import AeadKey
from repro.crypto.dh import DhKeyPair
from repro.crypto.primitives import sha256


def dh_commitment(public_value):
    """The report-data commitment to a DH public value."""
    # max(width, 1): a zero public value must still encode as one byte,
    # not as the empty string (which would collide with any encoding
    # scheme that strips leading zeros differently).
    width = max((public_value.bit_length() + 7) // 8, 1)
    return sha256(b"scbr-dh|" + public_value.to_bytes(width, "big"))


class RouterKeyExchange:
    """Client-side driver of the key-establishment protocol."""

    def __init__(self, router, attestation_service):
        self.router = router
        self.attestation_service = attestation_service

    def establish(self, client_id, expected_measurement=None,
                  tamper_dh_value=None):
        """Run the exchange; returns the client's AEAD key.

        ``tamper_dh_value`` lets tests play the man in the middle by
        substituting the DH value the client sees.
        """
        offer = self.router.channel_offer(client_id)
        router_public = offer["dh_public"]
        if tamper_dh_value is not None:
            router_public = tamper_dh_value
        # 1+2: quote chains to a registered platform & trusted code.
        self.attestation_service.verify(
            offer["quote"],
            expected_measurement=expected_measurement,
            expected_report_data=dh_commitment(router_public),
        )
        # 3: derive the shared key against the *attested* DH value.
        client_dh = DhKeyPair.generate()
        key = AeadKey(client_dh.shared_key(router_public, info=b"scbr-client"))
        self.router.channel_accept(client_id, client_dh.public_value)
        return key


def enclave_channel_offer(ctx, client_id):
    """ECALL: generate an ephemeral DH pair and report its commitment."""
    dh = DhKeyPair.generate()
    ctx.state.setdefault("pending_dh", {})[client_id] = dh
    report = ctx.report(dh_commitment(dh.public_value))
    return {"dh_public": dh.public_value, "report": report}


def enclave_channel_accept(ctx, client_id, client_public):
    """ECALL: finish the exchange and install the client key."""
    pending = ctx.state.get("pending_dh", {}).pop(client_id, None)
    if pending is None:
        raise AttestationError("no pending key exchange for %r" % client_id)
    key = AeadKey(pending.shared_key(client_public, info=b"scbr-client"))
    ctx.state.setdefault("client_keys", {})[client_id] = key
    return True
