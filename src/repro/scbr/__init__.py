"""SCBR: secure content-based routing (paper Section V-B).

Publications and subscriptions are encrypted and signed outside the
enclave; the compute-intensive matching step runs inside an enclave on
plaintext, over data structures that exploit containment relations
between filters so fewer comparisons are needed per publication.

- :mod:`~repro.scbr.filters` -- attribute constraints, subscriptions,
  publications, and the containment (covering) relation.
- :mod:`~repro.scbr.index` -- the containment-poset matching index
  (reduced comparisons), with memory-cost accounting.
- :mod:`~repro.scbr.naive` -- the linear-scan baseline matcher.
- :mod:`~repro.scbr.workload` -- subscription/publication generators.
- :mod:`~repro.scbr.messages` -- encrypted, signed envelopes.
- :mod:`~repro.scbr.keyexchange` -- attested key establishment between
  clients and the router enclave.
- :mod:`~repro.scbr.router` -- the enclave-hosted router.
- :mod:`~repro.scbr.replication` -- primary/standby broker failover
  with sealed-checkpoint restore and exactly-once replay.
- :mod:`~repro.scbr.sharding` -- the EPC-aware sharded matching plane.
- :mod:`~repro.scbr.health` -- phi-accrual failure detection for the
  sharded plane's shard enclaves.
"""

from repro.scbr.compact import HotColdIndex
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.health import (
    ShardDetection,
    ShardHealthMonitor,
    ShardHealthPolicy,
)
from repro.scbr.index import ContainmentIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.network import Broker, ScbrNetwork
from repro.scbr.workload import ScbrWorkload
from repro.scbr.messages import EncryptedEnvelope
from repro.scbr.keyexchange import RouterKeyExchange
from repro.scbr.replication import FailoverClient, ReplicatedBroker
from repro.scbr.router import ScbrClient, ScbrRouter
from repro.scbr.sharding import (
    EpcWatermarkPolicy,
    PartialCoverage,
    ShardedMatchingPlane,
    ShardedScbrRouter,
    ShardPlanner,
)

__all__ = [
    "Broker",
    "Constraint",
    "ContainmentIndex",
    "EncryptedEnvelope",
    "EpcWatermarkPolicy",
    "FailoverClient",
    "HotColdIndex",
    "LinearIndex",
    "Operator",
    "PartialCoverage",
    "Publication",
    "ReplicatedBroker",
    "RouterKeyExchange",
    "ScbrClient",
    "ScbrNetwork",
    "ScbrRouter",
    "ScbrWorkload",
    "ShardDetection",
    "ShardedMatchingPlane",
    "ShardedScbrRouter",
    "ShardHealthMonitor",
    "ShardHealthPolicy",
    "ShardPlanner",
    "Subscription",
]
