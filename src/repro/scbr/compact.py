"""An enclave-efficient matcher: the paper's stated future work.

Section V-B closes with: "These first results open the way for further
research to minimise memory footprint and build an enclave-efficient
system.  We intend to optimise our data structures to avoid paging and
cache misses."

:class:`HotColdIndex` implements that optimisation.  The per-visit
traffic of the baseline matcher touches one line of a 512-byte record,
so 7/8 of every fetched EPC page is dead weight; once the database
exceeds the usable EPC, every visited page is swapped by the OS.  The
hot/cold split stores the 64-byte *constraint summaries* (everything
the matcher evaluates) densely packed in a contiguous arena -- 8x
smaller than the full records -- while the cold remainder (payload
routing data, subscriber identity, bookkeeping) is only touched for the
few subscriptions that actually match.

Effect on the Figure 3 experiment: with a 200 MB logical database the
hot arena is 25 MB, far below the usable EPC, so matching never pages;
the enclave overhead collapses from ~18x back to the MEE-only regime.
The A8 benchmark quantifies this.
"""

from repro.errors import ConfigurationError
from repro.scbr.index import DEFAULT_RECORD_BYTES, EVAL_CYCLES, HOT_BYTES


class HotColdIndex:
    """Linear matcher over a packed hot arena with cold records aside.

    Interface-compatible with :class:`~repro.scbr.naive.LinearIndex`
    (insert / match / remove / database_bytes), so the Figure 3 harness
    can swap matchers.
    """

    # Hot summaries are packed in page-sized arena blocks so that the
    # bump allocator's interleaving of cold records cannot fragment
    # the hot scan path.
    ARENA_BLOCK_SLOTS = 64

    def __init__(self, memory=None, record_bytes=DEFAULT_RECORD_BYTES,
                 hot_bytes=HOT_BYTES, eval_cycles=EVAL_CYCLES):
        if record_bytes < hot_bytes:
            raise ConfigurationError("record_bytes must cover hot_bytes")
        self.memory = memory
        self.record_bytes = record_bytes
        self.hot_bytes = hot_bytes
        self.cold_bytes = record_bytes - hot_bytes
        self.eval_cycles = eval_cycles
        self._entries = []           # (subscription, hot_region, cold_region)
        self._arena_block = None
        self._arena_used = 0
        self.visits_last_match = 0
        self.cold_reads_last_match = 0

    def __len__(self):
        return len(self._entries)

    @property
    def database_bytes(self):
        """Logical footprint (hot + cold), comparable to the baseline."""
        return len(self._entries) * self.record_bytes

    @property
    def hot_bytes_total(self):
        """Resident bytes the matcher actually scans."""
        return len(self._entries) * self.hot_bytes

    def _allocate_hot(self):
        if self.memory is None:
            return None
        if self._arena_block is None or self._arena_used >= self.ARENA_BLOCK_SLOTS:
            self._arena_block = self.memory.allocate_aligned(
                self.ARENA_BLOCK_SLOTS * self.hot_bytes, label="hot-arena"
            )
            self._arena_used = 0
        region = self._arena_block.slice(
            self._arena_used * self.hot_bytes, self.hot_bytes
        )
        self._arena_used += 1
        return region

    def insert(self, subscription):
        """Add a subscription: summary into the arena, rest kept cold."""
        hot_region = self._allocate_hot()
        cold_region = None
        if self.memory is not None and self.cold_bytes:
            cold_region = self.memory.allocate(
                self.cold_bytes,
                label="cold-%s" % subscription.subscription_id,
            )
        self._entries.append((subscription, hot_region, cold_region))

    def remove(self, subscription_id):
        """Unsubscribe (linear search; arena slot is simply retired)."""
        for position, (subscription, _hot, _cold) in enumerate(self._entries):
            if subscription.subscription_id == subscription_id:
                del self._entries[position]
                return subscription
        raise ConfigurationError(
            "no subscription %r in the index" % subscription_id
        )

    def match(self, publication):
        """IDs of all matching subscriptions.

        Scans only hot summaries; touches a cold record exactly once
        per *match* (to produce the notification), never per visit.
        """
        matched = []
        cold_reads = 0
        for subscription, hot_region, cold_region in self._entries:
            if self.memory is not None:
                self.memory.access(hot_region, size=self.hot_bytes)
                self.memory.compute(self.eval_cycles)
            if subscription.matches(publication):
                matched.append(subscription.subscription_id)
                if self.memory is not None and cold_region is not None:
                    self.memory.access(cold_region)
                    cold_reads += 1
        self.visits_last_match = len(self._entries)
        self.cold_reads_last_match = cold_reads
        return set(matched)

    def subscriptions(self):
        """All stored subscriptions in insertion order."""
        return [entry[0] for entry in self._entries]
