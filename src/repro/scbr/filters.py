"""Content-based filters and the containment relation.

A :class:`Subscription` is a conjunction of per-attribute
:class:`Constraint` objects.  A :class:`Publication` is an attribute ->
value record.  Subscription *A covers B* (A ⊒ B) when every publication
matching B also matches A; the matching index prunes whole subtrees of
covered (more specific) subscriptions whenever a covering (more
general) one fails -- the "containment relations between filters"
optimisation the paper credits for SCBR's performance.
"""

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Operator(enum.Enum):
    """Comparison operators supported by constraints."""

    EQ = "=="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    RANGE = "[]"


@dataclass(frozen=True)
class Constraint:
    """One predicate over one attribute.

    For :attr:`Operator.RANGE`, ``value`` is an inclusive ``(low,
    high)`` pair (use :meth:`range_between` to construct one).
    """

    attribute: str
    operator: Operator
    value: object

    def __post_init__(self):
        if self.operator is Operator.RANGE:
            low, high = self.value  # raises for malformed values
            if low > high:
                raise ConfigurationError(
                    "range low %r exceeds high %r" % (low, high)
                )
            object.__setattr__(self, "value", (low, high))

    @classmethod
    def range_between(cls, attribute, low, high):
        """An inclusive interval constraint ``low <= v <= high``."""
        return cls(attribute, Operator.RANGE, (low, high))

    def matches(self, candidate):
        """Whether ``candidate`` satisfies this predicate."""
        if self.operator is Operator.EQ:
            return candidate == self.value
        if self.operator is Operator.LT:
            return candidate < self.value
        if self.operator is Operator.LE:
            return candidate <= self.value
        if self.operator is Operator.GT:
            return candidate > self.value
        if self.operator is Operator.GE:
            return candidate >= self.value
        low, high = self.value
        return low <= candidate <= high

    def _covers_range(self, other):
        """self covers a RANGE [c, d]."""
        low, high = other.value
        mine = self.operator
        if mine is Operator.LE:
            return high <= self.value
        if mine is Operator.LT:
            return high < self.value
        if mine is Operator.GE:
            return low >= self.value
        if mine is Operator.GT:
            return low > self.value
        if mine is Operator.RANGE:
            my_low, my_high = self.value
            return my_low <= low and high <= my_high
        # EQ covers a range only if it has collapsed to a point.
        return low == high == self.value

    def covers(self, other):
        """Whether every value satisfying ``other`` satisfies ``self``.

        Both constraints must be on the same attribute; constraints on
        different attributes are incomparable.
        """
        if self.attribute != other.attribute:
            return False
        mine, theirs = self.operator, other.operator
        if theirs is Operator.RANGE:
            return self._covers_range(other)
        if mine is Operator.RANGE:
            # Finite intervals never cover one-sided predicates; a
            # point predicate is covered if it falls inside.
            low, high = self.value
            return theirs is Operator.EQ and low <= other.value <= high
        if mine is Operator.EQ:
            return theirs is Operator.EQ and other.value == self.value
        if mine is Operator.LE:
            if theirs is Operator.EQ:
                return other.value <= self.value
            return theirs in (Operator.LE, Operator.LT) and other.value <= self.value
        if mine is Operator.LT:
            if theirs is Operator.EQ:
                return other.value < self.value
            if theirs is Operator.LT:
                return other.value <= self.value
            if theirs is Operator.LE:
                return other.value < self.value
            return False
        if mine is Operator.GE:
            if theirs is Operator.EQ:
                return other.value >= self.value
            return theirs in (Operator.GE, Operator.GT) and other.value >= self.value
        # mine is GT
        if theirs is Operator.EQ:
            return other.value > self.value
        if theirs is Operator.GT:
            return other.value >= self.value
        if theirs is Operator.GE:
            return other.value > self.value
        return False


class Subscription:
    """A conjunction of constraints, one per attribute."""

    def __init__(self, subscription_id, constraints, subscriber=None):
        self.subscription_id = subscription_id
        self.subscriber = subscriber
        mapping = {}
        for constraint in constraints:
            if constraint.attribute in mapping:
                raise ConfigurationError(
                    "duplicate constraint on attribute %r" % constraint.attribute
                )
            mapping[constraint.attribute] = constraint
        if not mapping:
            raise ConfigurationError("subscription needs at least one constraint")
        self.constraints = mapping

    def __repr__(self):
        parts = ", ".join(
            "%s %s %s" % (c.attribute, c.operator.value, c.value)
            for c in self.constraints.values()
        )
        return "Subscription(%r, %s)" % (self.subscription_id, parts)

    def matches(self, publication):
        """Whether ``publication`` satisfies every constraint."""
        attributes = publication.attributes
        for attribute, constraint in self.constraints.items():
            value = attributes.get(attribute)
            if value is None or not constraint.matches(value):
                return False
        return True

    def covers(self, other):
        """Containment test: A ⊒ B.

        A's constraints must be a (pointwise weaker) subset of B's:
        any attribute A constrains, B must constrain at least as
        tightly; attributes A does not mention are unconstrained in A.
        """
        for attribute, constraint in self.constraints.items():
            other_constraint = other.constraints.get(attribute)
            if other_constraint is None:
                return False
            if not constraint.covers(other_constraint):
                return False
        return True

    def footprint_estimate(self):
        """Approximate in-memory bytes of this subscription's record."""
        return 48 + 40 * len(self.constraints)


@dataclass(frozen=True)
class Publication:
    """An event: attribute -> numeric value, plus an opaque payload."""

    attributes: dict
    payload: bytes = b""

    def canonical_bytes(self):
        """Stable serialisation (for encryption and signing)."""
        pieces = []
        for attribute in sorted(self.attributes):
            pieces.append(
                ("%s=%r" % (attribute, self.attributes[attribute])).encode("utf-8")
            )
        return b"|".join(pieces) + b"#" + self.payload
