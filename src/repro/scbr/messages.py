"""Encrypted, authenticated envelopes for publications and subscriptions.

Outside the router enclave, both publications and subscriptions exist
only as AEAD ciphertexts under a per-client key established through the
attested key exchange.  The associated data binds the sender identity
and message kind, so envelopes cannot be replayed as a different kind
or attributed to a different client.
"""

import json

from repro.errors import IntegrityError
from repro.crypto.aead import Ciphertext, SealedBatch
from repro.scbr.filters import Constraint, Operator, Publication, Subscription


def serialize_subscription(subscription):
    """JSON bytes of a subscription (inside-enclave format)."""
    return json.dumps(
        {
            "id": subscription.subscription_id,
            "subscriber": subscription.subscriber,
            "constraints": [
                [c.attribute, c.operator.value, c.value]
                for c in subscription.constraints.values()
            ],
        },
        sort_keys=True,
    ).encode("utf-8")


def deserialize_subscription(raw):
    """Parse bytes produced by :func:`serialize_subscription`."""
    try:
        payload = json.loads(raw.decode("utf-8"))
        constraints = [
            Constraint(attribute, Operator(op), value)
            for attribute, op, value in payload["constraints"]
        ]
        return Subscription(payload["id"], constraints, payload["subscriber"])
    except (KeyError, ValueError) as exc:
        raise IntegrityError("malformed subscription: %s" % exc) from exc


def serialize_publication(publication):
    """JSON bytes of a publication."""
    return json.dumps(
        {
            "attributes": publication.attributes,
            "payload": publication.payload.hex(),
        },
        sort_keys=True,
    ).encode("utf-8")


def deserialize_publication(raw):
    """Parse bytes produced by :func:`serialize_publication`."""
    try:
        payload = json.loads(raw.decode("utf-8"))
        return Publication(
            attributes=payload["attributes"],
            payload=bytes.fromhex(payload["payload"]),
        )
    except (KeyError, ValueError) as exc:
        raise IntegrityError("malformed publication: %s" % exc) from exc


class EncryptedEnvelope:
    """A sealed message travelling through the untrusted broker fabric.

    ``recipient`` (optional) additionally binds the envelope to the
    client it is addressed to: a notification sealed for one subscriber
    never authenticates as anyone else's, even under a shared key.
    """

    def __init__(self, sender, kind, blob, recipient=None):
        self.sender = sender
        self.kind = kind
        self.blob = blob
        self.recipient = recipient

    @staticmethod
    def _aad(sender, kind, recipient=None):
        if recipient is None:
            return ("scbr|%s|%s" % (sender, kind)).encode("utf-8")
        return ("scbr|%s|%s|%s" % (sender, kind, recipient)).encode("utf-8")

    @classmethod
    def seal(cls, key, sender, kind, plaintext, recipient=None):
        """Encrypt ``plaintext`` under the client key."""
        blob = key.encrypt(
            plaintext, aad=cls._aad(sender, kind, recipient)
        ).to_bytes()
        return cls(sender, kind, blob, recipient)

    def open(self, key):
        """Decrypt (inside the enclave, or by the owning client)."""
        try:
            return key.decrypt(
                Ciphertext.from_bytes(self.blob),
                aad=self._aad(self.sender, self.kind, self.recipient),
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "envelope from %r (%s) failed authentication" % (self.sender, self.kind)
            ) from exc

    @classmethod
    def seal_batch(cls, key, sender, kind, plaintexts, recipient=None):
        """Seal many messages as one envelope (one nonce+tag for all).

        High-rate publishers amortise the per-envelope framing and MAC
        across a burst; the batch stays bound to (sender, kind) exactly
        like a single envelope.
        """
        blob = key.encrypt_batch(
            list(plaintexts), aad=cls._aad(sender, kind, recipient)
        ).to_bytes()
        return cls(sender, kind, blob, recipient)

    def open_batch(self, key):
        """Open an envelope produced by :meth:`seal_batch`."""
        try:
            return key.decrypt_batch(
                SealedBatch.from_bytes(self.blob),
                aad=self._aad(self.sender, self.kind, self.recipient),
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "batch envelope from %r (%s) failed authentication"
                % (self.sender, self.kind)
            ) from exc

    def is_batch(self):
        """Whether the payload carries the sealed-batch framing."""
        return SealedBatch.is_batch(self.blob)


NOTIFY_KIND = "notify"
NOTIFY_SENDER = "router"


class NotificationSealer:
    """Seals one notification envelope per subscriber, caching contexts.

    The fan-out hot path seals under as many keys as there are matched
    subscribers, per publication.  The per-subscriber sealing context
    -- the channel key plus the precomputed recipient-bound associated
    data -- is invariant across publications, so it is built once and
    reused; re-attestation (a new channel key) invalidates the cached
    entry automatically because the cache checks key identity.
    """

    def __init__(self, sender=NOTIFY_SENDER):
        self.sender = sender
        self._contexts = {}

    def context_count(self):
        """Cached sealing contexts (diagnostics)."""
        return len(self._contexts)

    def seal(self, subscriber, key, serialized_publication, subscription_ids):
        """One envelope for all of ``subscriber``'s matches of a publication.

        The payload is a sealed batch of ``[publication bytes, matched
        subscription ids]`` -- the publication is serialized by the
        caller exactly once per publish, never per notification.
        """
        cached = self._contexts.get(subscriber)
        if cached is None or cached[0] is not key:
            cached = (
                key,
                EncryptedEnvelope._aad(self.sender, NOTIFY_KIND, subscriber),
            )
            self._contexts[subscriber] = cached
        key, aad = cached
        ids_blob = json.dumps(sorted(subscription_ids)).encode("utf-8")
        blob = key.encrypt_batch(
            [serialized_publication, ids_blob], aad=aad
        ).to_bytes()
        return EncryptedEnvelope(self.sender, NOTIFY_KIND, blob, subscriber)


def open_notification(envelope, key):
    """Open a notification; returns ``(publication, subscription_ids)``.

    Understands both the batched per-subscriber format (publication +
    the subscriber's matched subscription ids in one envelope) and the
    seed per-match format (bare publication, no ids).
    """
    if envelope.is_batch():
        records = envelope.open_batch(key)
        if len(records) != 2:
            raise IntegrityError(
                "notification batch carries %d records, expected 2"
                % len(records)
            )
        try:
            subscription_ids = json.loads(records[1].decode("utf-8"))
        except ValueError as exc:
            raise IntegrityError("malformed notification ids: %s" % exc) from exc
        return deserialize_publication(records[0]), list(subscription_ids)
    return deserialize_publication(envelope.open(key)), []
