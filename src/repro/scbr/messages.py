"""Encrypted, authenticated envelopes for publications and subscriptions.

Outside the router enclave, both publications and subscriptions exist
only as AEAD ciphertexts under a per-client key established through the
attested key exchange.  The associated data binds the sender identity
and message kind, so envelopes cannot be replayed as a different kind
or attributed to a different client.
"""

import json

from repro.errors import IntegrityError
from repro.crypto.aead import Ciphertext, SealedBatch
from repro.scbr.filters import Constraint, Operator, Publication, Subscription


def serialize_subscription(subscription):
    """JSON bytes of a subscription (inside-enclave format)."""
    return json.dumps(
        {
            "id": subscription.subscription_id,
            "subscriber": subscription.subscriber,
            "constraints": [
                [c.attribute, c.operator.value, c.value]
                for c in subscription.constraints.values()
            ],
        },
        sort_keys=True,
    ).encode("utf-8")


def deserialize_subscription(raw):
    """Parse bytes produced by :func:`serialize_subscription`."""
    try:
        payload = json.loads(raw.decode("utf-8"))
        constraints = [
            Constraint(attribute, Operator(op), value)
            for attribute, op, value in payload["constraints"]
        ]
        return Subscription(payload["id"], constraints, payload["subscriber"])
    except (KeyError, ValueError) as exc:
        raise IntegrityError("malformed subscription: %s" % exc) from exc


def serialize_publication(publication):
    """JSON bytes of a publication."""
    return json.dumps(
        {
            "attributes": publication.attributes,
            "payload": publication.payload.hex(),
        },
        sort_keys=True,
    ).encode("utf-8")


def deserialize_publication(raw):
    """Parse bytes produced by :func:`serialize_publication`."""
    try:
        payload = json.loads(raw.decode("utf-8"))
        return Publication(
            attributes=payload["attributes"],
            payload=bytes.fromhex(payload["payload"]),
        )
    except (KeyError, ValueError) as exc:
        raise IntegrityError("malformed publication: %s" % exc) from exc


class EncryptedEnvelope:
    """A sealed message travelling through the untrusted broker fabric."""

    def __init__(self, sender, kind, blob):
        self.sender = sender
        self.kind = kind
        self.blob = blob

    @staticmethod
    def _aad(sender, kind):
        return ("scbr|%s|%s" % (sender, kind)).encode("utf-8")

    @classmethod
    def seal(cls, key, sender, kind, plaintext):
        """Encrypt ``plaintext`` under the client key."""
        blob = key.encrypt(plaintext, aad=cls._aad(sender, kind)).to_bytes()
        return cls(sender, kind, blob)

    def open(self, key):
        """Decrypt (inside the enclave, or by the owning client)."""
        try:
            return key.decrypt(
                Ciphertext.from_bytes(self.blob), aad=self._aad(self.sender, self.kind)
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "envelope from %r (%s) failed authentication" % (self.sender, self.kind)
            ) from exc

    @classmethod
    def seal_batch(cls, key, sender, kind, plaintexts):
        """Seal many messages as one envelope (one nonce+tag for all).

        High-rate publishers amortise the per-envelope framing and MAC
        across a burst; the batch stays bound to (sender, kind) exactly
        like a single envelope.
        """
        blob = key.encrypt_batch(
            list(plaintexts), aad=cls._aad(sender, kind)
        ).to_bytes()
        return cls(sender, kind, blob)

    def open_batch(self, key):
        """Open an envelope produced by :meth:`seal_batch`."""
        try:
            return key.decrypt_batch(
                SealedBatch.from_bytes(self.blob),
                aad=self._aad(self.sender, self.kind),
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "batch envelope from %r (%s) failed authentication"
                % (self.sender, self.kind)
            ) from exc
