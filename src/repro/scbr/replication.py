"""Replicated SCBR broker: standby failover with sealed-checkpoint replay.

The router enclave seals its subscription database to its own identity
(MRENCLAVE policy), so the blob can sit on untrusted storage and *any*
instance of the same measured router code on the same platform can
restore it.  :class:`ReplicatedBroker` exploits exactly that: after
every subscription change it checkpoints the active router; when an
ecall finds the active enclave destroyed (a crash injected by the
chaos layer or a :class:`~repro.chaos.FaultSchedule`), it promotes a
standby -- a fresh enclave of the same code -- restores the sealed
checkpoint, and has every client re-attest.  Channel keys are
deliberately not persisted, so failover forces fresh key exchanges;
the in-flight operation is then re-sealed under the new key and
replayed.

Delivery is *exactly-once* across failover:

- the broker logs every routed notification per subscriber with a
  broker-side sequence number (the envelope stays ciphertext -- the
  log leaks only what delivering it would);
- :class:`FailoverClient` keeps its full channel-key history, so it
  can still open notifications sealed before a failover;
- clients dedup twice: on broker sequence numbers (a replayed envelope
  is dropped) and on the ``(_publisher, _pub_seq)`` attributes
  publishers stamp into publications (the same publication re-routed
  after a retried publish is dropped);
- ``sync()`` pulls any logged sequences the client never saw (live
  pushes dropped by chaos, or pushes lost in the failover window).
"""

from repro.errors import BrokerUnavailableError, EnclaveLostError
from repro.scbr.filters import Publication
from repro.scbr.keyexchange import RouterKeyExchange
from repro.scbr.messages import (
    EncryptedEnvelope,
    open_notification,
    serialize_publication,
    serialize_subscription,
)
from repro.scbr.router import ScbrRouter


class ReplicatedBroker:
    """Primary/standby pair of router enclaves behind one endpoint.

    Presents the :class:`~repro.scbr.router.ScbrRouter` surface clients
    attest against (``measurement``, ``channel_offer``,
    ``channel_accept``) plus sealed-operation entry points that survive
    the active replica dying mid-call.
    """

    name = "scbr-broker"

    def __init__(self, platform, record_bytes=512, env=None, chaos=None,
                 orchestrator=None, retention=1024):
        self.platform = platform
        self.record_bytes = record_bytes
        self.env = env
        self.chaos = chaos
        self.orchestrator = orchestrator
        self.retention = retention
        self.active = ScbrRouter(platform, record_bytes)
        self._checkpoint = self.active.checkpoint()
        self.clients = {}
        self.failovers = 0
        self.failover_latencies = []
        self._failed_at = None
        self._logs = {}        # subscriber_id -> [(seq, envelope), ...]
        self._next_seq = {}    # subscriber_id -> next broker sequence
        self.notifications_delivered = 0
        self.notifications_dropped = 0
        self.notifications_replayed = 0

    # -- the router surface clients attest against ---------------------

    @property
    def measurement(self):
        """Measurement of the active replica (identical on standby:
        same code, so clients may keep pinning one value)."""
        return self.active.measurement

    def channel_offer(self, client_id):
        return self.active.channel_offer(client_id)

    def channel_accept(self, client_id, client_public):
        return self.active.channel_accept(client_id, client_public)

    def stats(self):
        return self.active.stats()

    # -- failover machinery --------------------------------------------

    def register(self, client):
        """Track a client so failover can force its re-attestation."""
        self.clients[client.client_id] = client

    def fail_active(self):
        """Destroy the active replica (fault-injection entry point)."""
        self._failed_at = self.env.now if self.env is not None else None
        self.active.enclave.destroy()

    def _call(self, attempt):
        """Run ``attempt`` once; on a lost replica, fail over and replay.

        ``attempt`` is a closure that seals its message under the
        *current* client key, so the replay after ``_failover`` is
        automatically re-sealed under the re-attested key.
        """
        try:
            return attempt()
        except (EnclaveLostError, BrokerUnavailableError):
            self._failover()
            return attempt()

    def _failover(self):
        """Promote a standby: restore the checkpoint, re-attest clients."""
        detected_at = self.env.now if self.env is not None else None
        self.failovers += 1
        self.active = ScbrRouter(self.platform, self.record_bytes)
        if self._checkpoint is not None:
            self.active.restore(self._checkpoint, self.record_bytes)
        for client in self.clients.values():
            client.reattach(self)
        recovered_at = self.env.now if self.env is not None else None
        if self._failed_at is not None and recovered_at is not None:
            self.failover_latencies.append(recovered_at - self._failed_at)
        if self.orchestrator is not None:
            self.orchestrator.report_anomaly(
                self.name, "broker-failover", onset=self._failed_at
            )
        self._failed_at = None

    # -- sealed operations ---------------------------------------------

    def subscribe_from(self, client, subscription):
        """Seal and route a subscription; checkpoint the new database."""
        def attempt():
            envelope = EncryptedEnvelope.seal(
                client.key, client.client_id, "subscribe",
                serialize_subscription(subscription),
            )
            return self.active.subscribe(envelope)

        subscription_id = self._call(attempt)
        self._checkpoint = self.active.checkpoint()
        return subscription_id

    def unsubscribe_from(self, client, subscription_id):
        result = self._call(
            lambda: self.active.unsubscribe(client.client_id, subscription_id)
        )
        self._checkpoint = self.active.checkpoint()
        return result

    def publish_from(self, client, publication):
        """Seal, route, log, and push one publication's notifications."""
        def attempt():
            envelope = EncryptedEnvelope.seal(
                client.key, client.client_id, "publish",
                serialize_publication(publication),
            )
            return self.active.publish_routed(envelope)

        routed = self._call(attempt)
        delivered = []
        for subscriber_id, envelope in routed:
            sequence = self._next_seq.get(subscriber_id, 0)
            self._next_seq[subscriber_id] = sequence + 1
            log = self._logs.setdefault(subscriber_id, [])
            log.append((sequence, envelope))
            if len(log) > self.retention:
                del log[0]
            if self.chaos is not None and self.chaos.drops_notification(
                subscriber_id, sequence
            ):
                self.notifications_dropped += 1
                continue
            self._push(subscriber_id, sequence, envelope)
            delivered.append(subscriber_id)
        return delivered

    def _push(self, subscriber_id, sequence, envelope):
        target = self.clients.get(subscriber_id)
        if target is not None:
            target.deliver(sequence, envelope)
            self.notifications_delivered += 1

    def replay(self, subscriber_id, have=frozenset()):
        """Redeliver logged notifications the subscriber has not seen.

        The repair path is a pull over a request/response channel, so
        it is reliable (unlike the chaos-exposed live push); envelopes
        redeliver as originally sealed -- possibly under a pre-failover
        key the client still holds.
        """
        replayed = 0
        target = self.clients.get(subscriber_id)
        if target is None:
            return 0
        for sequence, envelope in self._logs.get(subscriber_id, []):
            if sequence in have:
                continue
            target.deliver(sequence, envelope)
            replayed += 1
        self.notifications_replayed += replayed
        return replayed


class FailoverClient:
    """A publisher/subscriber that survives broker failover.

    Keeps every channel key it ever established (newest last) so
    notifications sealed before a failover still open; stamps outgoing
    publications with ``(_publisher, _pub_seq)`` so receivers can dedup
    a publication that was routed twice by a retried publish; and
    maintains an exactly-once ``inbox`` with both broker-sequence and
    publication dedup.
    """

    def __init__(self, client_id, broker, attestation_service,
                 expected_measurement=None):
        self.client_id = client_id
        self.broker = broker
        self.attestation_service = attestation_service
        self.expected_measurement = (
            expected_measurement or broker.measurement
        )
        self._keys = []
        self.reattachments = 0
        self.inbox = []
        self._seen_sequences = set()
        self._seen_publications = set()
        self.duplicates_discarded = 0
        self._pub_seq = 0
        self._attach(broker)
        broker.register(self)

    @property
    def key(self):
        """The current channel key (to the active replica)."""
        return self._keys[-1]

    def _attach(self, router):
        self._keys.append(
            RouterKeyExchange(router, self.attestation_service).establish(
                self.client_id, expected_measurement=self.expected_measurement
            )
        )

    def reattach(self, router):
        """Re-attest after failover; the old key stays in the history."""
        self._attach(router)
        self.reattachments += 1

    # -- publishing ----------------------------------------------------

    def publish(self, publication):
        """Stamp, seal, and publish; returns the notified subscribers."""
        stamped = Publication(
            attributes=dict(
                publication.attributes,
                _publisher=self.client_id,
                _pub_seq=self._pub_seq,
            ),
            payload=publication.payload,
        )
        self._pub_seq += 1
        return self.broker.publish_from(self, stamped)

    def subscribe(self, subscription):
        return self.broker.subscribe_from(self, subscription)

    def unsubscribe(self, subscription_id):
        return self.broker.unsubscribe_from(self, subscription_id)

    # -- receiving -----------------------------------------------------

    def open_notification(self, envelope):
        """Open a notification with the newest key that authenticates it."""
        error = None
        for key in reversed(self._keys):
            try:
                publication, _subscription_ids = open_notification(
                    envelope, key
                )
                return publication
            except Exception as exc:  # IntegrityError; try an older key
                error = exc
        raise error

    def deliver(self, sequence, envelope):
        """Exactly-once sink for broker pushes and replays."""
        if sequence in self._seen_sequences:
            self.duplicates_discarded += 1
            return False
        publication = self.open_notification(envelope)
        self._seen_sequences.add(sequence)
        identity = (
            publication.attributes.get("_publisher"),
            publication.attributes.get("_pub_seq"),
        )
        if identity != (None, None) and identity in self._seen_publications:
            self.duplicates_discarded += 1
            return False
        self._seen_publications.add(identity)
        self.inbox.append(publication)
        return True

    def sync(self):
        """Pull any logged notifications this client never received."""
        return self.broker.replay(self.client_id, have=self._seen_sequences)
