"""The linear-scan baseline matcher.

Evaluates every stored subscription against every publication -- the
matcher SCBR's containment index is compared against in the A1
ablation.  Shares the record layout and per-visit cost accounting with
:class:`~repro.scbr.index.ContainmentIndex`, so measured differences
come from the number of comparisons, not from accounting artifacts.
"""

from repro.scbr.index import DEFAULT_RECORD_BYTES, EVAL_CYCLES, HOT_BYTES


class LinearIndex:
    """Stores subscriptions in a flat, insertion-ordered table."""

    def __init__(self, memory=None, record_bytes=DEFAULT_RECORD_BYTES,
                 hot_bytes=HOT_BYTES, eval_cycles=EVAL_CYCLES):
        self.memory = memory
        self.record_bytes = record_bytes
        self.hot_bytes = hot_bytes
        self.eval_cycles = eval_cycles
        self._entries = []
        self.visits_last_match = 0

    def __len__(self):
        return len(self._entries)

    @property
    def database_bytes(self):
        """Total resident footprint of the subscription database."""
        return len(self._entries) * self.record_bytes

    def insert(self, subscription):
        """Append a subscription to the table."""
        region = None
        if self.memory is not None:
            region = self.memory.allocate(
                self.record_bytes,
                label="sub-%s" % subscription.subscription_id,
            )
        self._entries.append((subscription, region))

    def match(self, publication):
        """IDs of all subscriptions matching ``publication``."""
        matched = []
        for subscription, region in self._entries:
            if self.memory is not None:
                self.memory.access(region, size=self.hot_bytes)
                self.memory.compute(self.eval_cycles)
            if subscription.matches(publication):
                matched.append(subscription.subscription_id)
        self.visits_last_match = len(self._entries)
        return set(matched)

    def subscriptions(self):
        """All stored subscriptions in insertion order."""
        return [subscription for subscription, _region in self._entries]

    def remove(self, subscription_id):
        """Unsubscribe by id (linear search, like everything here)."""
        from repro.errors import ConfigurationError

        for position, (subscription, region) in enumerate(self._entries):
            if subscription.subscription_id == subscription_id:
                del self._entries[position]
                if self.memory is not None and region is not None:
                    self.memory.free(region)
                return subscription
        raise ConfigurationError(
            "no subscription %r in the table" % subscription_id
        )

    def roots(self):
        """A flat table has no covering structure: every row is a root."""
        return self.subscriptions()

    def covers_any_root(self, subscription):
        """No containment structure to exploit; placement falls back to
        load balancing."""
        return False

    def extract_subtrees(self, target_bytes):
        """Detach oldest entries totalling >= ``target_bytes``.

        Rows are independent (no chains to preserve), so rebalancing
        moves them from the front of the table; freed records leave
        this memory's resident set.
        """
        count = min(
            len(self._entries),
            -(-target_bytes // self.record_bytes),  # ceil
        )
        extracted = []
        for subscription, region in self._entries[:count]:
            if self.memory is not None and region is not None:
                self.memory.free(region)
            extracted.append(subscription)
        del self._entries[:count]
        return extracted
