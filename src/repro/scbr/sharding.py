"""The EPC-aware sharded SCBR matching plane.

Figure 3 of the paper is a cliff: once the subscription database
outgrows the ~93 MB of usable EPC, every matching walk pays EPC paging
and throughput collapses by ~18x.  The paper's remedy is to keep the
enclave working set below the EPC limit; this module operationalises
that remedy by *sharding* the matching plane across worker enclaves on
separate machines, so no single enclave's resident set ever crosses
the watermark:

- :class:`EpcWatermarkPolicy` decides when a shard must split -- before
  its database crosses a fraction of the usable EPC, and (optionally)
  before the *hot* fraction of its records outgrows the LLC, which is
  where the first Figure 3 knee actually lives;
- :class:`ShardPlanner` places subscriptions consistently and
  covering-aware: a subscription covered by an existing root joins that
  root's shard, so covering chains stay together and the containment
  index keeps its pruning power after partitioning;
- :class:`ShardedMatchingPlane` is the index-level plane used by the
  memory experiments: one simulated machine (clock, LLC, EPC) per
  shard, publications matched on every shard in parallel
  (``ThreadPoolExecutor``, as in the map/reduce driver), virtual
  latency taken as the slowest shard (the critical path) plus nothing
  else -- the merge is a set union;
- :class:`ShardedScbrRouter` is the full enclave-level plane: a
  client-facing *coordinator* enclave (attested key exchange, covering
  placement, batched notification fan-out with cached per-subscriber
  sealing contexts) in front of N *shard* enclaves holding disjoint
  partitions of the subscription database.

The plane key shared by the coordinator and the shards is provisioned
over a mutually attested Diffie-Hellman exchange
(:func:`shard_join_offer` / :func:`coord_enroll_shard` /
:func:`shard_join_complete`): the untrusted plane driver only relays
quotes and wrapped keys, and never sees key material -- unlike the
map/reduce driver, the broker host is part of the threat model.
"""

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import (
    AttestationError,
    ConfigurationError,
    EnclaveLostError,
    IntegrityError,
    PartialCoverageError,
)
from repro.crypto.aead import AeadKey, Ciphertext, SealedBatch
from repro.crypto.dh import DhKeyPair
from repro.retry import BackoffClock, RetryPolicy, retry_call
from repro.scbr.health import ShardHealthMonitor
from repro.scbr.index import ContainmentIndex, HOT_BYTES
from repro.scbr.keyexchange import (
    dh_commitment,
    enclave_channel_accept,
    enclave_channel_offer,
)
from repro.scbr.provisioning import (
    DH_KEYGEN_CYCLES,
    DH_SHARED_CYCLES,
    CachedAttestationVerifier,
    PlaneProvisioner,
    verify_quote,
    coord_enroll_batch,
    coord_resume,
    coord_rotate,
    shard_join_complete_batch,
    shard_join_offer2,
    shard_rekey,
    shard_resume_complete,
    shard_resume_offer,
)
from repro.scbr.messages import (
    NotificationSealer,
    deserialize_publication,
    deserialize_subscription,
    serialize_subscription,
)
from repro.scbr.router import (
    SEAL_CYCLES_PER_BYTE,
    SEAL_SETUP_CYCLES,
    SERIALIZE_CYCLES_PER_BYTE,
)
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.enclave import EnclaveCode
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock, cycles_to_seconds
from repro.telemetry import (
    DEFAULT_CYCLE_BUCKETS,
    EnclaveTelemetry,
    NULL_RECORDER,
    NULL_REGISTRY,
    default_registry,
)

# Associated-data labels of the intra-plane (coordinator <-> shard)
# message kinds; all ride the shared plane key.
_AAD_SUBSCRIPTION = b"plane|subscription"
_AAD_PUBLICATION = b"plane|publication"
_AAD_MATCHED = b"plane|matched"
_AAD_MIGRATE = b"plane|migrate"
_AAD_SNAPSHOT = b"plane|snapshot"
_AAD_JOIN = b"plane|join|"

DEFAULT_RECORD_BYTES = 512


class EpcWatermarkPolicy:
    """When must a shard split?  Before its resident set starts paging.

    Two capacity cliffs bound a shard's database (Figure 3 shows both):

    - the *EPC* cliff: once ``database_bytes`` exceeds the usable EPC,
      every matching walk page-faults (~18x);
    - the *LLC* cliff: the matcher touches ``hot_bytes`` per record, so
      once ``count * lines_per_record`` outgrows the LLC, every visit
      is an (MEE-decrypted) cache miss (~4-6x) even while the database
      still fits the EPC.

    ``max_shard_bytes`` is the smaller of the two limits scaled by the
    watermark fraction; a split triggers when the *next* insert would
    cross it, so a shard never reaches the limit.  ``llc_aware=False``
    polices only the paper's EPC boundary.
    """

    def __init__(self, costs=DEFAULT_COSTS, record_bytes=DEFAULT_RECORD_BYTES,
                 hot_bytes=HOT_BYTES, watermark=0.85, llc_aware=True):
        if not 0.0 < watermark <= 1.0:
            raise ConfigurationError("watermark must be in (0, 1]")
        self.costs = costs
        self.record_bytes = record_bytes
        self.watermark = watermark
        self.llc_aware = llc_aware
        limit = watermark * costs.epc_usable
        if llc_aware:
            lines_per_record = max(
                1, -(-hot_bytes // costs.line_size)  # ceil
            )
            llc_records = (costs.llc_capacity // costs.line_size) // lines_per_record
            llc_fit_bytes = llc_records * record_bytes
            limit = min(limit, watermark * llc_fit_bytes)
        self.max_shard_bytes = int(limit)

    def needs_split(self, database_bytes, incoming_bytes=None):
        """Whether admitting ``incoming_bytes`` more would cross the mark."""
        if incoming_bytes is None:
            incoming_bytes = self.record_bytes
        return database_bytes + incoming_bytes > self.max_shard_bytes

    def split_target_bytes(self, database_bytes):
        """How much to evacuate from a splitting shard (half)."""
        return database_bytes // 2

    def shards_for(self, total_bytes):
        """Lower bound on shards needed for ``total_bytes`` of database."""
        return max(1, -(-total_bytes // self.max_shard_bytes))


class ShardPlanner:
    """Consistent, covering-aware placement of subscriptions on shards.

    Placement is a pure function of the covering flags and the shard
    loads, so every replica of the planner makes the same decision:

    1. if some shard's forest has a root covering the subscription, the
       subscription joins the *first* such shard -- it extends a
       covering chain already living there, and the containment index
       will file it beneath that root, adding no new root to walk;
    2. otherwise the least-loaded shard wins (ties broken by position),
       which keeps partitions balanced under churn.

    Rule 1 has an overload guard: a covering shard running more than
    ``balance_slack`` bytes ahead of the lightest shard is skipped.
    Covering workloads concentrate -- popular broad filters attract all
    their specialisations -- and matching latency is the *slowest*
    shard, so unbounded colocation would re-serialise the parallel
    plane.  A chain split this way still matches correctly (results are
    a union); it merely costs the hot shard's pruning for the spilled
    subscription.
    """

    # Generous by default: colocation (pruning) usually beats balance,
    # so the guard only fires under extreme concentration.
    BALANCE_SLACK_BYTES = 512 * DEFAULT_RECORD_BYTES

    @staticmethod
    def choose(cover_flags, loads, balance_slack=BALANCE_SLACK_BYTES):
        """Pick a shard position given per-shard flags and byte loads."""
        if len(cover_flags) != len(loads) or not loads:
            raise ConfigurationError("flags and loads must align, non-empty")
        lightest = min(loads)
        for position, flag in enumerate(cover_flags):
            if flag and loads[position] - lightest <= balance_slack:
                return position
        return min(range(len(loads)), key=lambda position: (loads[position], position))

    @staticmethod
    def place(subscription, indexes, balance_slack=BALANCE_SLACK_BYTES):
        """Index-level convenience: choose among live index objects."""
        return ShardPlanner.choose(
            [index.covers_any_root(subscription) for index in indexes],
            [index.database_bytes for index in indexes],
            balance_slack=balance_slack,
        )

    @staticmethod
    def choose_node(shard_counts, epc_loads, over_watermark=None):
        """Pick a *node* position for a new shard enclave.

        Placement is a pure function of the per-node shard counts and
        EPC loads, like :meth:`choose` is for subscriptions:

        1. anti-affinity first -- the node hosting the fewest plane
           shards wins, so one machine failure darkens as few
           partitions as possible (and mass recovery has somewhere to
           spread them);
        2. ties break toward the lowest EPC utilisation (the new
           partition will grow; start it where pages are cheapest),
           then toward position.

        ``over_watermark`` (optional per-node flags) demotes nodes
        already past their EPC watermark: they are considered only when
        *every* candidate is over -- a full fleet still beats refusing
        to place at all.
        """
        if not shard_counts or len(shard_counts) != len(epc_loads):
            raise ConfigurationError(
                "shard counts and EPC loads must align, non-empty"
            )
        positions = list(range(len(shard_counts)))
        if over_watermark is not None:
            if len(over_watermark) != len(shard_counts):
                raise ConfigurationError(
                    "watermark flags must align with the candidates"
                )
            under = [
                position for position in positions
                if not over_watermark[position]
            ]
            if under:
                positions = under
        return min(
            positions,
            key=lambda position: (
                shard_counts[position], epc_loads[position], position,
            ),
        )


class MatchingShard:
    """One index-level shard: its own machine (clock, LLC, EPC) + index."""

    def __init__(self, shard_id, index_factory, record_bytes, costs,
                 enclave=True):
        self.shard_id = shard_id
        self.clock = CycleClock()
        if enclave:
            self.memory = SimulatedMemory(
                self.clock, costs, enclave=True, epc=EpcModel(costs),
                name="shard-%d" % shard_id,
            )
        else:
            self.memory = SimulatedMemory(
                self.clock, costs, name="shard-%d" % shard_id
            )
        self.index = index_factory(memory=self.memory,
                                   record_bytes=record_bytes)

    def match(self, publication):
        """Match locally; returns (ids, elapsed cycles, visits)."""
        start = self.clock.now
        matched = self.index.match(publication)
        return matched, self.clock.now - start, self.index.visits_last_match


class ShardedMatchingPlane:
    """Index-level sharded matching: the Figure 3 experiment, partitioned.

    Runs the *same* matcher code as the monolithic experiments against
    N per-shard enclave memories instead of one.  Inserting splits a
    shard through the :class:`EpcWatermarkPolicy` before it can cross
    the watermark (whole root subtrees migrate, so covering chains stay
    intact); matching fans out to every shard on a thread pool and the
    virtual latency of a publication is the *slowest shard's* cycles --
    shards are separate machines matching in parallel.
    """

    def __init__(self, index_factory=ContainmentIndex,
                 record_bytes=DEFAULT_RECORD_BYTES, costs=DEFAULT_COSTS,
                 policy=None, enclave=True, initial_shards=1):
        if initial_shards < 1:
            raise ConfigurationError("need at least one shard")
        self.index_factory = index_factory
        self.record_bytes = record_bytes
        self.costs = costs
        self.enclave = enclave
        self.policy = policy or EpcWatermarkPolicy(costs, record_bytes)
        self.shards = []
        for _ in range(initial_shards):
            self._spawn_shard()
        self._home = {}
        self.splits = 0
        self.migrated = 0
        self.match_cycles = 0
        self.last_match_cycles = 0
        self.visits_last_match = 0
        registry = default_registry()
        self._tel_matches = registry.counter("scbr.plane.matches")
        self._tel_match_cycles = registry.histogram(
            "scbr.plane.match_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        self._tel_splits = registry.counter("scbr.plane.splits")
        self._tel_visits = registry.counter("scbr.plane.visits")

    def _spawn_shard(self):
        shard = MatchingShard(
            len(self.shards), self.index_factory, self.record_bytes,
            self.costs, enclave=self.enclave,
        )
        self.shards.append(shard)
        return shard

    def __len__(self):
        return len(self._home)

    @property
    def shard_count(self):
        return len(self.shards)

    @property
    def database_bytes(self):
        """Total database footprint across all shards."""
        return sum(shard.index.database_bytes for shard in self.shards)

    def shard_sizes(self):
        """Per-shard database bytes (diagnostics, balance assertions)."""
        return [shard.index.database_bytes for shard in self.shards]

    def insert(self, subscription):
        """Place and insert; splits the target shard if it would cross
        the EPC watermark first."""
        shard = self.shards[
            ShardPlanner.place(
                subscription, [shard.index for shard in self.shards]
            )
        ]
        if self.policy.needs_split(shard.index.database_bytes,
                                   self.record_bytes):
            self._split(shard)
            # Re-place: the covering chain this subscription belongs to
            # may just have migrated to the new shard.
            shard = self.shards[
                ShardPlanner.place(
                    subscription, [shard.index for shard in self.shards]
                )
            ]
        shard.index.insert(subscription)
        self._home[subscription.subscription_id] = shard
        return shard.shard_id

    def _split(self, shard):
        """Evacuate half of ``shard`` (whole subtrees) to a fresh shard."""
        target = self.policy.split_target_bytes(shard.index.database_bytes)
        fresh = self._spawn_shard()
        moved = shard.index.extract_subtrees(target)
        for subscription in moved:
            fresh.index.insert(subscription)
            self._home[subscription.subscription_id] = fresh
        self.splits += 1
        self.migrated += len(moved)
        self._tel_splits.inc()
        return fresh

    def remove(self, subscription_id):
        """Unsubscribe wherever the subscription lives."""
        shard = self._home.pop(subscription_id, None)
        if shard is None:
            raise ConfigurationError(
                "no subscription %r in the plane" % subscription_id
            )
        return shard.index.remove(subscription_id)

    def match(self, publication):
        """Union of every shard's matches.

        All shards match concurrently; the plane's virtual latency for
        the publication is the slowest shard's elapsed cycles (shards
        are independent machines), accumulated in :attr:`match_cycles`.
        """
        shards = self.shards
        if len(shards) == 1:
            matched, elapsed, visits = shards[0].match(publication)
            results = [(matched, elapsed, visits)]
        else:
            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                results = list(
                    pool.map(lambda shard: shard.match(publication), shards)
                )
        union = set()
        slowest = 0
        visits = 0
        for matched, elapsed, shard_visits in results:
            union |= matched
            slowest = max(slowest, elapsed)
            visits += shard_visits
        self.last_match_cycles = slowest
        self.match_cycles += slowest
        self.visits_last_match = visits
        self._tel_matches.inc()
        self._tel_match_cycles.observe(slowest)
        self._tel_visits.inc(visits)
        return union

    def check_invariants(self):
        """Every shard's forest invariant, plus disjoint partitions."""
        seen = set()
        for shard in self.shards:
            shard.index.check_invariants()
            for subscription in shard.index.subscriptions():
                if subscription.subscription_id in seen:
                    raise ConfigurationError(
                        "subscription %r present on two shards"
                        % subscription.subscription_id
                    )
                seen.add(subscription.subscription_id)
        if seen != set(self._home):
            raise ConfigurationError("home map out of sync with shards")
        return True


# --- enclave-level plane ------------------------------------------------
#
# Shard enclave: holds one partition of the subscription database and
# the plane key.  Everything entering or leaving is sealed under the
# plane key; the shard never talks to clients directly.

def _plane_key(ctx):
    key = ctx.state.get("plane_key")
    if key is None:
        raise AttestationError("shard has not joined the plane")
    return key


def _open_plane(ctx, blob, aad):
    try:
        return _plane_key(ctx).decrypt(Ciphertext.from_bytes(blob), aad=aad)
    except IntegrityError as exc:
        raise IntegrityError("plane message failed authentication") from exc


def _tel(ctx):
    """In-enclave telemetry handles for this enclave's state.

    Shared no-ops when the enclave was set up without a telemetry key
    -- the plane then records nothing inside enclaves, and the trace
    context riding the ECALLs is simply ignored.
    """
    telemetry = ctx.state.get("telemetry")
    if telemetry is None:
        return NULL_REGISTRY, NULL_RECORDER
    return telemetry.registry, telemetry.recorder


def plane_telemetry_export(ctx):
    """ECALL (both codes): sealed telemetry snapshot, or None.

    The host relays the returned blob as-is; it is AEAD-sealed under
    the telemetry key provisioned at setup, so in-enclave timings
    reach only the operator holding that key.
    """
    telemetry = ctx.state.get("telemetry")
    if telemetry is None:
        return None
    return telemetry.export_sealed()


def shard_setup(ctx, shard_id, record_bytes=DEFAULT_RECORD_BYTES,
                attestation=None, coordinator_measurement=None,
                telemetry_key=None):
    """ECALL: initialise an empty partition.

    ``attestation`` / ``coordinator_measurement`` (optional) let the
    shard verify the coordinator's quote during the join handshake;
    omitting them models a deployment that pins trust at the client
    side only.  ``telemetry_key`` (optional) provisions in-enclave
    telemetry: match timings are then recorded inside the enclave and
    leave only as sealed snapshots (:func:`plane_telemetry_export`).
    """
    ctx.state["shard_id"] = shard_id
    ctx.state["record_bytes"] = record_bytes
    ctx.state["index"] = ContainmentIndex(
        memory=ctx.memory, record_bytes=record_bytes
    )
    ctx.state["owners"] = {}
    ctx.state["version"] = 0
    ctx.state["attestation"] = attestation
    ctx.state["coordinator_measurement"] = coordinator_measurement
    if telemetry_key is not None:
        ctx.state["telemetry"] = EnclaveTelemetry(
            telemetry_key, "shard-%d" % shard_id
        )
    return True


def shard_join_offer(ctx):
    """ECALL: start the attested join; returns a DH value + report."""
    ctx.compute(DH_KEYGEN_CYCLES)
    dh = DhKeyPair.generate()
    ctx.state["join_dh"] = dh
    return {
        "dh_public": dh.public_value,
        "report": ctx.report(dh_commitment(dh.public_value)),
    }


def shard_join_complete(ctx, coordinator_public, quote, wrapped_key):
    """ECALL: finish the join; unwraps the plane key.

    The coordinator's DH value arrives quoted; when the shard was set
    up with an attestation service it verifies the quote chains to a
    registered platform, to the pinned coordinator measurement, and to
    this DH value -- a host substituting its own key exchange cannot
    produce that quote.
    """
    dh = ctx.state.pop("join_dh", None)
    if dh is None:
        raise AttestationError("no pending plane join")
    attestation = ctx.state.get("attestation")
    if attestation is not None:
        verify_quote(
            attestation, quote, compute=ctx.compute,
            expected_measurement=ctx.state.get("coordinator_measurement"),
            expected_report_data=dh_commitment(coordinator_public),
        )
    ctx.compute(DH_SHARED_CYCLES)
    transport = AeadKey(
        dh.shared_key(coordinator_public, info=b"scbr-plane-join")
    )
    aad = _AAD_JOIN + str(ctx.state["shard_id"]).encode("ascii")
    key_bytes = transport.decrypt(Ciphertext.from_bytes(wrapped_key), aad=aad)
    ctx.state["plane_key"] = AeadKey(key_bytes)
    return True


def shard_insert(ctx, blob):
    """ECALL: admit one plane-sealed subscription into the partition."""
    subscription = deserialize_subscription(
        _open_plane(ctx, blob, _AAD_SUBSCRIPTION)
    )
    ctx.state["index"].insert(subscription)
    ctx.state["owners"][subscription.subscription_id] = subscription.subscriber
    ctx.state["version"] += 1
    return subscription.subscription_id


def shard_covers_root(ctx, blob):
    """ECALL: placement probe -- does a local root cover this filter?"""
    subscription = deserialize_subscription(
        _open_plane(ctx, blob, _AAD_SUBSCRIPTION)
    )
    return ctx.state["index"].covers_any_root(subscription)


def shard_remove(ctx, subscription_id, client_id):
    """ECALL: unsubscribe; only the owning client may remove."""
    owner = ctx.state["owners"].get(subscription_id)
    if owner is None:
        raise ConfigurationError(
            "no subscription %r on this shard" % subscription_id
        )
    if owner != client_id:
        raise IntegrityError(
            "client %r does not own subscription %r"
            % (client_id, subscription_id)
        )
    ctx.state["index"].remove(subscription_id)
    del ctx.state["owners"][subscription_id]
    ctx.state["version"] += 1
    return True


def shard_match(ctx, sealed_publication, trace=None):
    """ECALL: match one plane-sealed publication against the partition.

    Returns ``(sealed matches, visits)``: the matches travel back to
    the coordinator as plane ciphertext carrying this shard's id and
    its ``(subscription_id, subscriber)`` pairs; the id lets the
    coordinator account *coverage* -- which partitions actually
    answered -- so a missing shard can never silently shrink a match
    set.  The visit count is an operational counter the host could
    read via stats anyway.

    ``trace`` is the host's ``(trace_id, span_id)`` publish context;
    when this shard records telemetry, its match span parents under it
    -- but the span itself (match count, in-enclave elapsed cycles)
    stays sealed.
    """
    registry, recorder = _tel(ctx)
    with recorder.span("shard.match", ctx.clock, trace=trace) as span:
        publication = deserialize_publication(
            _open_plane(ctx, sealed_publication, _AAD_PUBLICATION)
        )
        index = ctx.state["index"]
        matched = index.match(publication)
        owners = ctx.state["owners"]
        pairs = sorted((sid, owners[sid]) for sid in matched)
        payload = json.dumps(
            {"shard": ctx.state["shard_id"], "pairs": pairs}
        ).encode("utf-8")
        ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(payload))
        blob = _plane_key(ctx).encrypt(payload, aad=_AAD_MATCHED).to_bytes()
        span.attrs["visits"] = index.visits_last_match
        span.attrs["matches"] = len(pairs)
        registry.counter("scbr.shard.matched_pairs").inc(len(pairs))
        registry.histogram(
            "scbr.shard.match_visits",
            buckets=(1, 4, 16, 64, 256, 1024, 4096, 16384),
        ).observe(index.visits_last_match)
    return blob, index.visits_last_match


def shard_evacuate(ctx, target_bytes):
    """ECALL: detach whole subtrees totalling >= ``target_bytes``.

    Returns ``(ids, sealed batch)``; the ids let the untrusted driver
    update its routing table (it learned them at subscribe time), the
    batch re-seals the full subscriptions for the receiving shard.
    """
    index = ctx.state["index"]
    moved = index.extract_subtrees(target_bytes)
    owners = ctx.state["owners"]
    for subscription in moved:
        del owners[subscription.subscription_id]
    if moved:
        ctx.state["version"] += 1
    payloads = [serialize_subscription(s) for s in moved]
    batch = _plane_key(ctx).encrypt_batch(payloads, aad=_AAD_MIGRATE)
    return [s.subscription_id for s in moved], batch.to_bytes()


def shard_load(ctx, blob):
    """ECALL: admit a migrated batch (insertion order preserves chains)."""
    try:
        payloads = _plane_key(ctx).decrypt_batch(
            SealedBatch.from_bytes(blob), aad=_AAD_MIGRATE
        )
    except IntegrityError as exc:
        raise IntegrityError("migration batch failed authentication") from exc
    index = ctx.state["index"]
    owners = ctx.state["owners"]
    for payload in payloads:
        subscription = deserialize_subscription(payload)
        index.insert(subscription)
        owners[subscription.subscription_id] = subscription.subscriber
    return len(payloads)


def shard_ping(ctx):
    """ECALL: liveness heartbeat; cheap on purpose.

    The plane driver pings each shard every heartbeat period and feeds
    the arrivals to the failure detector; a destroyed enclave raises
    :class:`~repro.errors.EnclaveLostError` instead of answering, so
    suspicion accrues.  The version lets the host notice a stale
    snapshot without opening anything.
    """
    return {"shard_id": ctx.state["shard_id"], "version": ctx.state["version"]}


def shard_snapshot(ctx):
    """ECALL: seal the whole partition under the *plane* key.

    Deliberately not platform sealing: platform seal keys derive from
    per-machine fuse secrets, so a snapshot sealed that way dies with
    the machine.  Sealing under the plane key means any replacement
    shard that completes the attested join -- on a brand-new platform --
    can restore the partition, while the untrusted host storing the
    blob still sees only ciphertext.

    Returns ``(version, sealed batch)``; payload 0 is a header binding
    the shard id, version, and record count, so a host feeding shard
    A's snapshot to shard B, or an old snapshot truncated short, fails
    closed.
    """
    index = ctx.state["index"]
    subscriptions = list(index.subscriptions())
    header = json.dumps({
        "shard_id": ctx.state["shard_id"],
        "version": ctx.state["version"],
        "count": len(subscriptions),
    }).encode("utf-8")
    payloads = [header] + [serialize_subscription(s) for s in subscriptions]
    total = sum(len(p) for p in payloads)
    ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * total)
    batch = _plane_key(ctx).encrypt_batch(payloads, aad=_AAD_SNAPSHOT)
    return ctx.state["version"], batch.to_bytes()


def shard_restore(ctx, blob, expected_shard_id=None):
    """ECALL: rebuild an *empty* partition from a sealed snapshot.

    Verifies the header: the snapshot must name this shard's partition
    (a host cannot graft another partition's database here) and carry
    exactly the promised record count.  Sets the partition version to
    the snapshot's, so replayed log entries continue the version line.
    """
    try:
        payloads = _plane_key(ctx).decrypt_batch(
            SealedBatch.from_bytes(blob), aad=_AAD_SNAPSHOT
        )
    except IntegrityError as exc:
        raise IntegrityError("shard snapshot failed authentication") from exc
    if not payloads:
        raise IntegrityError("shard snapshot is missing its header")
    header = json.loads(payloads[0].decode("utf-8"))
    if header["shard_id"] != ctx.state["shard_id"]:
        raise IntegrityError(
            "snapshot belongs to shard %r, this is shard %r"
            % (header["shard_id"], ctx.state["shard_id"])
        )
    if expected_shard_id is not None and header["shard_id"] != expected_shard_id:
        raise IntegrityError("snapshot does not match the expected shard")
    if len(payloads) - 1 != header["count"]:
        raise IntegrityError(
            "snapshot header promises %d records, batch carries %d"
            % (header["count"], len(payloads) - 1)
        )
    index = ctx.state["index"]
    owners = ctx.state["owners"]
    if len(index) or owners:
        raise ConfigurationError("restore requires an empty partition")
    for payload in payloads[1:]:
        subscription = deserialize_subscription(payload)
        index.insert(subscription)
        owners[subscription.subscription_id] = subscription.subscriber
    ctx.state["version"] = header["version"]
    return header["count"]


def shard_stats(ctx):
    """ECALL: operational counters (no content)."""
    index = ctx.state["index"]
    return {
        "shard_id": ctx.state["shard_id"],
        "subscriptions": len(index),
        "database_bytes": index.database_bytes,
        "resident_bytes": ctx.memory.resident_bytes,
        "visits_last_match": index.visits_last_match,
        "version": ctx.state["version"],
    }


SHARD_ENTRY_POINTS = {
    "setup": shard_setup,
    "join_offer": shard_join_offer,
    "join_complete": shard_join_complete,
    "join_offer2": shard_join_offer2,
    "join_complete_batch": shard_join_complete_batch,
    "resume_offer": shard_resume_offer,
    "resume_complete": shard_resume_complete,
    "rekey": shard_rekey,
    "insert": shard_insert,
    "covers_root": shard_covers_root,
    "remove": shard_remove,
    "match": shard_match,
    "evacuate": shard_evacuate,
    "load": shard_load,
    "ping": shard_ping,
    "snapshot": shard_snapshot,
    "restore": shard_restore,
    "stats": shard_stats,
    "telemetry_export": plane_telemetry_export,
}

SHARD_CODE = EnclaveCode("scbr-shard", SHARD_ENTRY_POINTS)


# Coordinator enclave: the client-facing front.  Holds the client
# channel keys, generates the plane key, enrols shards over attested
# DH, translates client envelopes into plane messages, and seals the
# deduplicated per-subscriber notification fan-out.

def _coord_client_key(ctx, client_id):
    key = ctx.state.get("client_keys", {}).get(client_id)
    if key is None:
        raise AttestationError("client %r has not established a key" % client_id)
    return key


def coord_setup(ctx, attestation=None, shard_measurement=None,
                telemetry_key=None):
    """ECALL: initialise the coordinator; mints the plane key in-enclave.

    ``attestation`` + ``shard_measurement`` pin which shard code may
    join the plane; without them any joiner that completes the DH
    exchange is admitted (trusting-driver mode, as in map/reduce).
    ``telemetry_key`` (optional) provisions sealed in-enclave telemetry,
    exported via :func:`plane_telemetry_export`.
    """
    ctx.state["plane_key"] = AeadKey.generate()
    ctx.state["attestation"] = attestation
    ctx.state["shard_measurement"] = shard_measurement
    ctx.state["notification_sealer"] = NotificationSealer()
    ctx.state["pending_publications"] = {}
    ctx.state["next_token"] = 0
    ctx.state["enrolled"] = set()
    # Provisioning-plane state (repro.scbr.provisioning): the plane key
    # epoch, the key sealing resumption tickets, the per-platform
    # resumption secrets, and which platform each shard enrolled from.
    ctx.state["plane_epoch"] = 1
    ctx.state["ticket_key"] = AeadKey.generate()
    ctx.state["resumption"] = {}
    ctx.state["shard_platform"] = {}
    if telemetry_key is not None:
        ctx.state["telemetry"] = EnclaveTelemetry(telemetry_key, "coord")
    return True


def coord_enroll_shard(ctx, shard_id, shard_public, quote):
    """ECALL: verify a shard's join offer and wrap the plane key for it.

    Returns the coordinator's DH value, its own report over that value
    (for the shard to verify in turn), and the plane key wrapped under
    the DH-derived transport key.
    """
    attestation = ctx.state.get("attestation")
    if attestation is not None:
        verify_quote(
            attestation, quote, compute=ctx.compute,
            expected_measurement=ctx.state.get("shard_measurement"),
            expected_report_data=dh_commitment(shard_public),
        )
    ctx.compute(DH_KEYGEN_CYCLES + DH_SHARED_CYCLES)
    dh = DhKeyPair.generate()
    transport = AeadKey(dh.shared_key(shard_public, info=b"scbr-plane-join"))
    aad = _AAD_JOIN + str(shard_id).encode("ascii")
    wrapped = transport.encrypt(
        ctx.state["plane_key"].key_bytes, aad=aad
    ).to_bytes()
    # Membership roster: from now on every publication expects an
    # answer from this partition.  Re-enrolling the same id (a
    # recovered replacement) keeps the roster unchanged.
    ctx.state.setdefault("enrolled", set()).add(shard_id)
    return {
        "dh_public": dh.public_value,
        "report": ctx.report(dh_commitment(dh.public_value)),
        "wrapped_key": wrapped,
    }


def coord_admit(ctx, envelope):
    """ECALL: open a client subscription and re-seal it for the plane."""
    key = _coord_client_key(ctx, envelope.sender)
    if envelope.kind != "subscribe":
        raise IntegrityError("expected a subscription envelope")
    payload = envelope.open(key)
    subscription = deserialize_subscription(payload)
    if subscription.subscriber != envelope.sender:
        raise IntegrityError(
            "subscription claims subscriber %r but was sent by %r"
            % (subscription.subscriber, envelope.sender)
        )
    blob = ctx.state["plane_key"].encrypt(
        payload, aad=_AAD_SUBSCRIPTION
    ).to_bytes()
    return subscription.subscription_id, blob


def coord_authorize(ctx, client_id):
    """ECALL: assert the caller holds an attested channel."""
    _coord_client_key(ctx, client_id)
    return True


def coord_ingest(ctx, envelope, trace=None):
    """ECALL: open a client publication; seal it *once* for all shards.

    The serialized publication is parked under a token until
    :func:`coord_finalize` turns the shards' matches into
    notifications.  One plane ciphertext serves every shard -- they
    share the plane key, so the fan-out costs one seal regardless of
    the shard count.
    """
    registry, recorder = _tel(ctx)
    with recorder.span("coord.ingest", ctx.clock, trace=trace):
        key = _coord_client_key(ctx, envelope.sender)
        if envelope.kind != "publish":
            raise IntegrityError("expected a publication envelope")
        serialized = envelope.open(key)
        # Validate before fanning out; a malformed publication must fail
        # here, not on every shard.
        deserialize_publication(serialized)
        ctx.compute(SERIALIZE_CYCLES_PER_BYTE * len(serialized))
        token = ctx.state["next_token"]
        ctx.state["next_token"] = token + 1
        # Park the publication together with the coverage the plane owes
        # it: the set of partitions enrolled *now*.  Finalize will compare
        # who actually answered against this roster, so a shard dying
        # between ingest and finalize cannot silently shrink the match set.
        ctx.state["pending_publications"][token] = (
            serialized, frozenset(ctx.state.get("enrolled", ())),
        )
        ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(serialized))
        sealed = ctx.state["plane_key"].encrypt(
            serialized, aad=_AAD_PUBLICATION
        ).to_bytes()
        registry.counter("scbr.coord.publications").inc()
    return token, sealed


def coord_finalize(ctx, token, match_blobs, trace=None):
    """ECALL: merge shard matches into per-subscriber notifications.

    Dedupes by subscriber across *all* shards (a subscriber's matching
    subscriptions may be spread over several partitions), then seals
    exactly one envelope per subscriber through the cached sealing
    contexts.

    Returns ``(routed, missing)``: the ``(subscriber, envelope)`` pairs
    plus the sorted ids of enrolled partitions that did *not* answer.
    Each match blob authenticates the shard id it came from, so the
    untrusted driver can neither forge an answer for a dead shard nor
    double-count one shard as two -- coverage is judged in-enclave.

    Match counts are secret (they reveal which publications matter to
    whom), so the dedupe accounting -- matched pairs in, deduplicated
    notifications out -- is recorded here, inside the enclave, and
    leaves only sealed.
    """
    registry, recorder = _tel(ctx)
    with recorder.span("coord.finalize", ctx.clock, trace=trace) as span:
        pending = ctx.state["pending_publications"].pop(token, None)
        if pending is None:
            raise ConfigurationError("no pending publication %r" % token)
        serialized, expected = pending
        plane_key = ctx.state["plane_key"]
        by_subscriber = {}
        answered = set()
        pairs_in = 0
        for blob in match_blobs:
            try:
                payload = plane_key.decrypt(
                    Ciphertext.from_bytes(blob), aad=_AAD_MATCHED
                )
            except IntegrityError as exc:
                raise IntegrityError(
                    "shard match result failed authentication"
                ) from exc
            record = json.loads(payload.decode("utf-8"))
            answered.add(record["shard"])
            for subscription_id, subscriber in record["pairs"]:
                by_subscriber.setdefault(subscriber, []).append(
                    subscription_id
                )
                pairs_in += 1
        missing = sorted(expected - answered)
        sealer = ctx.state["notification_sealer"]
        routed = []
        for subscriber in sorted(by_subscriber):
            envelope = sealer.seal(
                subscriber,
                _coord_client_key(ctx, subscriber),
                serialized,
                by_subscriber[subscriber],
            )
            ctx.compute(
                SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(envelope.blob)
            )
            routed.append((subscriber, envelope))
        span.attrs["pairs"] = pairs_in
        span.attrs["notifications"] = len(routed)
        registry.counter("scbr.coord.matched_pairs").inc(pairs_in)
        registry.counter("scbr.coord.notifications").inc(len(routed))
    return routed, missing


COORD_ENTRY_POINTS = {
    "setup": coord_setup,
    "channel_offer": enclave_channel_offer,
    "channel_accept": enclave_channel_accept,
    "enroll_shard": coord_enroll_shard,
    "enroll_batch": coord_enroll_batch,
    "resume": coord_resume,
    "rotate": coord_rotate,
    "admit": coord_admit,
    "authorize": coord_authorize,
    "ingest": coord_ingest,
    "finalize": coord_finalize,
    "telemetry_export": plane_telemetry_export,
}

COORD_CODE = EnclaveCode("scbr-coordinator", COORD_ENTRY_POINTS)


@dataclass
class PartialCoverage:
    """A publish that could not reach every enrolled partition.

    Returned (``on_partial="report"`` mode) instead of a plain routed
    list when one or more shards failed to answer: ``routed`` carries
    the notifications from the partitions that *did* match, ``missing``
    names the partitions whose matches are unknown.  The caller decides
    -- retry later, alert, degrade -- but it can never mistake this for
    a complete result.
    """

    routed: list
    missing: Tuple[int, ...]

    @property
    def complete(self):
        return not self.missing


class ShardEnclave:
    """Host handle of one shard enclave on its own platform.

    Besides the live enclave, the host keeps the shard's *durability
    state*: the latest plane-sealed snapshot and the mutation log of
    operations applied since (already-sealed blobs the host relayed
    anyway -- it learns nothing new by storing them).  Snapshot + log
    is everything a replacement enclave needs to rebuild the partition.
    """

    def __init__(self, shard_id, platform, enclave):
        self.shard_id = shard_id
        self.platform = platform
        self.enclave = enclave
        self.database_bytes = 0  # host mirror, updated by the router
        self.snapshot = None          # sealed batch (plane key)
        self.snapshot_version = -1    # partition version it captured
        self.log = []                 # mutations since the snapshot
        self.failed_at = None         # virtual onset of the last crash


class ShardedScbrRouter:
    """The untrusted driver of the enclave-level sharded matching plane.

    Presents the :class:`~repro.scbr.router.ScbrRouter` surface
    (``measurement``, ``channel_offer``/``channel_accept``,
    ``subscribe``/``unsubscribe``/``publish``/``publish_routed``/
    ``stats``), so :class:`~repro.scbr.router.ScbrClient` works against
    it unchanged -- clients attest the *coordinator* enclave.

    Virtual-time accounting: the coordinator runs on its platform's
    clock; every shard is a separate machine with its own clock.  A
    publish is ``ingest`` (coordinator) + the *slowest* shard's match
    (they run concurrently on a thread pool) + ``finalize``
    (coordinator); the sum lands in :attr:`last_publish_cycles`.

    Fault tolerance: each shard keeps a plane-sealed snapshot plus a
    mutation log (:class:`ShardEnclave`); a crashed shard is respawned
    on a fresh platform from the factory, re-attested, re-joined over
    DH, restored from its snapshot, and the log replayed
    (:meth:`recover_shard`).  Failure *detection* is heartbeat-driven:
    :meth:`probe_heartbeats` pings every shard and feeds a phi-accrual
    :class:`~repro.scbr.health.ShardHealthMonitor`; :meth:`start_health`
    schedules the probing on the simulated clock and auto-recovers on
    detection.  A publish that cannot cover every enrolled partition
    never shrinks silently: ``on_partial="retry"`` (default) heals the
    missing shards and republishes under the retry policy;
    ``on_partial="report"`` returns a :class:`PartialCoverage` naming
    the unanswered partitions.
    """

    name = "scbr-plane"

    def __init__(self, platform, shard_platform_factory,
                 attestation_service=None, shards=2,
                 record_bytes=DEFAULT_RECORD_BYTES, policy=None,
                 auto_split=True, env=None, chaos=None, orchestrator=None,
                 health_policy=None, snapshot_interval=16,
                 on_partial="retry", retry_policy=None,
                 telemetry_key=None, tracer=None, provisioner=None):
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        if on_partial not in ("retry", "report"):
            raise ConfigurationError(
                "on_partial must be 'retry' or 'report', got %r"
                % (on_partial,)
            )
        if snapshot_interval < 1:
            raise ConfigurationError("snapshot_interval must be >= 1")
        self.platform = platform
        self.shard_platform_factory = shard_platform_factory
        self.attestation_service = attestation_service
        # Enclaves verify quotes through a shared memoizing front: a
        # re-join with an unchanged (platform, measurement, payload,
        # signature) skips the expensive signature check while the
        # policy checks rerun live (see repro.scbr.provisioning).
        if attestation_service is None:
            self.verifier = None
        elif isinstance(attestation_service, CachedAttestationVerifier):
            self.verifier = attestation_service
            self.attestation_service = attestation_service.service
        else:
            self.verifier = CachedAttestationVerifier(attestation_service)
        self.provisioner = (
            provisioner if provisioner is not None
            else PlaneProvisioner(attestation=self.verifier, chaos=chaos)
        )
        self.record_bytes = record_bytes
        self.policy = policy or EpcWatermarkPolicy(
            platform.costs, record_bytes
        )
        self.auto_split = auto_split
        self.env = env
        self.chaos = chaos
        self.orchestrator = orchestrator
        self.snapshot_interval = snapshot_interval
        self.on_partial = on_partial
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=4, base_delay=0.0005
        )
        self.backoff = BackoffClock()
        self.monitor = (
            ShardHealthMonitor(env, health_policy, chaos)
            if env is not None else None
        )
        # Telemetry: the operator's key for sealed in-enclave snapshots
        # (None disables in-enclave recording entirely) and a host-side
        # span recorder for the driver's own clock domain.
        self.telemetry_key = telemetry_key
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        registry = default_registry()
        self._tel_publications = registry.counter("scbr.publications")
        self._tel_subscribes = registry.counter("scbr.subscribes")
        self._tel_unsubscribes = registry.counter("scbr.unsubscribes")
        self._tel_publish_cycles = registry.histogram(
            "scbr.publish_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        # One observation per coverage-tracked fan-out: how long the
        # coordinator waited for the slowest shard (the parked
        # publication's critical path).
        self._tel_coverage_wait = registry.histogram(
            "scbr.coverage_wait_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        self._tel_shard_match = registry.histogram(
            "scbr.shard_match_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        self._tel_visits = registry.counter("scbr.visits")
        self._tel_failures = registry.counter("scbr.shard_failures")
        self._tel_recoveries = registry.counter("scbr.recoveries")
        self._tel_recovery_cycles = registry.histogram(
            "scbr.recovery_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        self._tel_splits = registry.counter("scbr.splits")
        self._tel_partial = registry.counter("scbr.partial_publishes")
        self._tel_snapshots = registry.counter("scbr.snapshots")
        self.coordinator = platform.load_enclave(COORD_CODE)
        self.coordinator.ecall(
            "setup", self.verifier, SHARD_CODE.measurement,
            telemetry_key,
        )
        self.shards = []
        self._retired = []
        self._beat_sequence = {}
        self._home = {}
        self.publications_routed = 0
        self.publish_cycles = 0
        self.last_publish_cycles = 0
        self.last_visits = 0
        self.splits = 0
        self.migrated = 0
        self.shard_failures = 0
        self.snapshots_taken = 0
        self.partial_publishes = 0
        self.recovery_episodes = []
        for shard in self._spawn_shard_enclaves_batch(list(range(shards))):
            self.shards.append(shard)
            if self.monitor is not None:
                self.monitor.register(shard.shard_id)
            self._snapshot(shard)

    # -- plane membership ----------------------------------------------

    def _spawn_shard(self):
        """Grow the plane by one shard (a split or initial bring-up)."""
        shard = self._spawn_shard_enclave(len(self.shards))
        self.shards.append(shard)
        if self.monitor is not None:
            self.monitor.register(shard.shard_id)
        self._snapshot(shard)
        return shard

    def _spawn_shard_enclave(self, shard_id):
        """Load a shard enclave on a fresh platform and join it."""
        return self._spawn_shard_enclaves_batch([shard_id])[0]

    def _spawn_shard_enclaves_batch(self, shard_ids):
        """Bring up one enclave per shard id and join them in one round.

        Used for initial bring-up (all shards), growth (one), and mass
        recovery (a dead node's displaced set); either way each enclave
        earns the plane key only through the provisioner's attested
        enrollment -- batched, cache-priced, ticket-resumable
        (:class:`~repro.scbr.provisioning.PlaneProvisioner`).
        """
        shards, _baselines = self._provision_batch(shard_ids)
        return shards

    def _provision_batch(self, shard_ids):
        """Spawn + enroll ``shard_ids``; also return per-machine clock
        baselines (captured before each machine does any join work) so
        recovery can attribute cycle *deltas* even on pooled node
        platforms whose clocks carry history."""
        entries = []
        baselines = {}
        for shard_id in shard_ids:
            platform = self.shard_platform_factory(shard_id)
            baselines.setdefault(id(platform), platform.clock.now)
            if self.attestation_service is not None:
                # The infrastructure provider registers new machines
                # with the verification service; without this, a shard
                # spawned by a runtime split could never prove its
                # quote.
                self.attestation_service.register_platform(
                    platform.platform_id,
                    platform.quoting_enclave.public_key,
                )
            enclave = platform.load_enclave(
                SHARD_CODE, name="scbr-shard-%d" % shard_id
            )
            enclave.ecall(
                "setup", shard_id, self.record_bytes,
                self.verifier, COORD_CODE.measurement,
                self.telemetry_key,
            )
            entries.append((shard_id, platform, enclave))
        # The host only relays public DH values, quotes, wrapped keys,
        # sealed blobs, and tickets.
        self.provisioner.join(self.coordinator, self.platform, entries)
        return [
            ShardEnclave(shard_id, platform, enclave)
            for shard_id, platform, enclave in entries
        ], baselines

    def _shard_by_id(self, shard_id):
        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        raise ConfigurationError("no shard %r in the plane" % (shard_id,))

    # -- durability -----------------------------------------------------

    def _snapshot(self, shard):
        """Refresh ``shard``'s sealed snapshot; the log starts over."""
        version, blob = shard.enclave.ecall("snapshot")
        shard.snapshot = blob
        shard.snapshot_version = version
        shard.log = []
        self.snapshots_taken += 1
        self._tel_snapshots.inc()
        return version

    def _log_mutation(self, shard, entry):
        """Append one mutation to the shard's replay log.

        Entries hold the already-plane-sealed blobs the host relayed
        anyway; once the log reaches ``snapshot_interval`` the shard is
        re-snapshotted and the log truncated, bounding replay work.
        """
        shard.log.append(entry)
        if len(shard.log) >= self.snapshot_interval:
            self._snapshot(shard)

    # -- failure, detection, recovery -----------------------------------

    def fail_shard(self, shard_id):
        """Kill one shard enclave (the chaos/fault-schedule hook).

        The partition goes dark: its enclave state is unreachable, its
        EPC pages and cache lines are reclaimed by the dying enclave's
        teardown, and subsequent ecalls raise
        :class:`~repro.errors.EnclaveLostError`.  Recovery is a
        separate, explicit act (:meth:`recover_shard` or the health
        loop).  Returns False if the shard was already dead.
        """
        shard = self._shard_by_id(shard_id)
        if shard.enclave.destroyed:
            return False
        shard.failed_at = self.env.now if self.env is not None else None
        shard.enclave.destroy()
        self.shard_failures += 1
        self._tel_failures.inc()
        if self.monitor is not None:
            self.monitor.record_onset(shard_id, shard.failed_at)
        return True

    def recover_shard(self, shard_id):
        """Respawn a dead shard from its sealed snapshot + mutation log.

        The replacement runs on a *fresh* platform from the factory: it
        re-registers with the attestation service, re-joins the plane
        over attested DH (earning the plane key), restores the last
        snapshot, and replays the logged mutations -- so the rebuilt
        partition is byte-for-byte the pre-crash database.  The old
        enclave is destroyed unconditionally first: a false-positive
        detection (heartbeats lost from a live shard) then degrades to
        an unnecessary but harmless respawn instead of a split-brain
        partition.

        Recovery work happens "now" in simulated time (the environment
        clock does not advance inside a callback), so its latency is
        measured in enclave cycles: the replacement platform's clock
        (fresh, starts at zero) plus the coordinator cycles spent on
        the re-join, converted to virtual seconds.
        """
        return self.recover_shards([shard_id])[0]

    def recover_shards(self, shard_ids):
        """Respawn a *set* of dead shards in one provisioning round.

        The whole displaced set re-attests through ONE batched
        enrollment (or ticket resumptions) instead of per-shard serial
        handshakes -- the coordinator signs one quote over a commitment
        to every offered DH value.  Restore and replay stay per-shard.

        Virtual-time attribution: each shard is charged its own
        platform's cycle *delta* (shards sharing a machine split their
        group's delta) plus an equal slice of the coordinator's delta
        -- the batched round's cost amortizes across the set, which is
        the point.
        """
        shard_ids = list(shard_ids)
        if not shard_ids:
            return []
        olds = {}
        for shard_id in shard_ids:
            old = self._shard_by_id(shard_id)
            old.enclave.destroy()  # idempotent; see recover_shard
            olds[shard_id] = old
        coordinator_clock = self.platform.clock
        coordinator_start = coordinator_clock.now
        spawned, baselines = self._provision_batch(shard_ids)
        replacements = dict(zip(shard_ids, spawned))
        # Group shards by machine: a node may host several of them, and
        # they split their machine's cycle delta.
        platform_groups = {}
        for shard_id in shard_ids:
            platform = replacements[shard_id].platform
            platform_groups.setdefault(id(platform), []).append(shard_id)
        details = {}
        for shard_id in shard_ids:
            old = olds[shard_id]
            replacement = replacements[shard_id]
            restored = 0
            if old.snapshot is not None:
                restored = replacement.enclave.ecall(
                    "restore", old.snapshot, shard_id
                )
            replayed = 0
            for entry in old.log:
                if entry[0] == "insert":
                    replacement.enclave.ecall("insert", entry[1])
                elif entry[0] == "remove":
                    replacement.enclave.ecall("remove", entry[1], entry[2])
                else:
                    raise ConfigurationError(
                        "unknown log entry kind %r" % (entry[0],)
                    )
                replayed += 1
            replacement.database_bytes = old.database_bytes
            self.shards[self.shards.index(old)] = replacement
            self._retired.append(old)
            for subscription_id, home in list(self._home.items()):
                if home is old:
                    self._home[subscription_id] = replacement
            # Consolidate: the replacement snapshots its rebuilt
            # partition, so the next crash replays from here, not from
            # the old log.
            self._snapshot(replacement)
            details[shard_id] = (restored, replayed)
        coordinator_delta = coordinator_clock.now - coordinator_start
        coordinator_share = coordinator_delta // len(shard_ids)
        coordinator_rem = coordinator_delta - coordinator_share * len(
            shard_ids
        )
        shard_cycles = {}
        for group in platform_groups.values():
            platform = replacements[group[0]].platform
            delta = platform.clock.now - baselines[id(platform)]
            if platform.clock is coordinator_clock:
                # A shard co-located with the coordinator: its cycles
                # are already in the coordinator delta.
                delta = 0
            share = delta // len(group)
            remainder = delta - share * len(group)
            for position, shard_id in enumerate(group):
                shard_cycles[shard_id] = share + (
                    remainder if position == 0 else 0
                )
        results = []
        for position, shard_id in enumerate(shard_ids):
            old = olds[shard_id]
            replacement = replacements[shard_id]
            restored, replayed = details[shard_id]
            recovery_cycles = shard_cycles[shard_id] + coordinator_share + (
                coordinator_rem if position == 0 else 0
            )
            recovery_seconds = cycles_to_seconds(recovery_cycles)
            self._tel_recoveries.inc()
            self._tel_recovery_cycles.observe(recovery_cycles)
            self.tracer.record(
                "scbr.recover", coordinator_start,
                coordinator_start + recovery_cycles,
                shard=shard_id, restored=restored, replayed=replayed,
            )
            episode = {
                "shard_id": shard_id,
                "onset": old.failed_at,
                "restored": restored,
                "replayed": replayed,
                "recovery_cycles": recovery_cycles,
                "recovery_seconds": recovery_seconds,
            }
            self.recovery_episodes.append(episode)
            if self.monitor is not None:
                self.monitor.register(shard_id)
            if self.orchestrator is not None:
                self.orchestrator.report_recovery(
                    "%s/shard-%d" % (self.name, shard_id),
                    "shard-recovery",
                    recovery_seconds,
                    onset=old.failed_at,
                )
            results.append(replacement)
        return results

    def probe_heartbeats(self):
        """One heartbeat round: ping every shard, feed the detector.

        A dead enclave fails the ping; chaos may eat a live shard's
        beat (``heartbeat_loss_rate``).  Returns the shards the monitor
        *newly* declares down this round.
        """
        if self.monitor is None:
            raise ConfigurationError(
                "heartbeat probing needs an Environment (env=...)"
            )
        for shard in list(self.shards):
            beat = self._beat_sequence.get(shard.shard_id, 0)
            self._beat_sequence[shard.shard_id] = beat + 1
            try:
                shard.enclave.ecall("ping")
            except EnclaveLostError:
                continue
            if not self._shard_reachable(shard):
                # Alive behind a partition: the probe (and hence the
                # beat) never crosses, so suspicion accrues exactly as
                # for a dead shard -- the detector cannot tell them
                # apart, and conservative recovery handles both.
                continue
            if self.chaos is not None and self.chaos.drops_heartbeat(
                shard.shard_id, beat
            ):
                continue
            self.monitor.beat(shard.shard_id)
        down = self.monitor.poll()
        if self.orchestrator is not None:
            for shard_id in down:
                self.orchestrator.report_anomaly(
                    "%s/shard-%d" % (self.name, shard_id),
                    "shard-liveness",
                    onset=self._shard_by_id(shard_id).failed_at,
                )
        return down

    def start_health(self, duration, auto_recover=True):
        """Schedule heartbeat probing every monitor period until
        ``duration``; newly detected-down shards are recovered in place
        when ``auto_recover`` (the paper's orchestration loop: detect,
        then adapt the infrastructure)."""
        if self.monitor is None:
            raise ConfigurationError(
                "the health loop needs an Environment (env=...)"
            )
        period = self.monitor.policy.heartbeat_period

        def tick():
            for shard_id in self.probe_heartbeats():
                if auto_recover:
                    self.recover_shard(shard_id)

        beats = int(duration / period)
        for index in range(1, beats + 1):
            self.env.call_at(self.env.now + index * period, tick)
        return beats

    @property
    def measurement(self):
        """The coordinator's measurement (what clients pin)."""
        return self.coordinator.measurement

    @property
    def shard_count(self):
        return len(self.shards)

    def channel_offer(self, client_id):
        offer = self.coordinator.ecall("channel_offer", client_id)
        quote = self.platform.quoting_enclave.quote(offer["report"])
        return {"dh_public": offer["dh_public"], "quote": quote}

    def channel_accept(self, client_id, client_public):
        return self.coordinator.ecall(
            "channel_accept", client_id, client_public
        )

    # -- subscription plane --------------------------------------------

    def subscribe(self, envelope):
        """Admit, place (covering-aware), split-if-needed, insert.

        Placement considers only *live* shards -- a dark partition
        cannot answer the covering probe -- and the insert is appended
        to the target shard's replay log before returning, so a crash
        after this call cannot lose the subscription.
        """
        subscription_id, blob = self.coordinator.ecall("admit", envelope)
        shard = self._place(blob)
        if self.auto_split and self.policy.needs_split(
            shard.database_bytes, self.record_bytes
        ):
            self._split(shard)
            shard = self._place(blob)
        shard.enclave.ecall("insert", blob)
        shard.database_bytes += self.record_bytes
        self._home[subscription_id] = shard
        self._log_mutation(shard, ("insert", blob))
        self._tel_subscribes.inc()
        return subscription_id

    def rotate_plane_key(self):
        """Roll the plane to a new key epoch.

        The coordinator mints a fresh plane key (and ticket key), every
        live shard rolls forward via a rekey blob wrapped under the
        *old* plane key -- no re-attestation -- and every outstanding
        resumption ticket is invalidated: the next re-join from a
        pre-rotation ticket falls back to the full attested handshake.
        Dark shards are healed first (their replacements join directly
        into the new epoch on the next heal would otherwise hold the
        old key), and every shard is re-snapshotted afterwards because
        snapshots sealed under the retired key cannot restore into the
        new epoch.  Returns the new epoch number.
        """
        self._heal_dark_shards()
        epoch = self.provisioner.rotate(self.coordinator, self.shards)
        for shard in self.shards:
            self._snapshot(shard)
        return epoch

    def _shard_reachable(self, shard):
        """Whether the host can currently talk to ``shard``.

        The nodeless base plane always can (a shard is either live or
        destroyed); node-bound planes override this to model network
        partitions -- a partitioned shard's enclave keeps running, but
        no match request or heartbeat crosses until the partition
        heals.
        """
        return True

    def _live_shards(self):
        return [
            s for s in self.shards
            if not s.enclave.destroyed and self._shard_reachable(s)
        ]

    def _place(self, blob):
        live = self._live_shards()
        if not live:
            # Total darkness: heal the plane before admitting state.
            self.recover_shards([shard.shard_id for shard in self.shards])
            live = self._live_shards()
        flags = [shard.enclave.ecall("covers_root", blob) for shard in live]
        loads = [shard.database_bytes for shard in live]
        return live[ShardPlanner.choose(flags, loads)]

    def _split(self, shard):
        """Rebalance: evacuate half of ``shard`` onto a fresh shard.

        A split rewrites both partitions outside the insert/remove log
        vocabulary, so both sides are re-snapshotted immediately -- the
        replay logs restart from the post-split state.
        """
        fresh = self._spawn_shard()
        target = self.policy.split_target_bytes(shard.database_bytes)
        moved_ids, batch = shard.enclave.ecall("evacuate", target)
        fresh.enclave.ecall("load", batch)
        moved_bytes = len(moved_ids) * self.record_bytes
        shard.database_bytes -= moved_bytes
        fresh.database_bytes += moved_bytes
        for subscription_id in moved_ids:
            self._home[subscription_id] = fresh
        self.splits += 1
        self.migrated += len(moved_ids)
        self._tel_splits.inc()
        self._snapshot(shard)
        self._snapshot(fresh)
        return fresh

    def unsubscribe(self, client_id, subscription_id):
        """Authorise at the coordinator, remove at the home shard.

        If the home shard is dark the partition is recovered first:
        removing from the replacement (and logging the removal) is the
        only way the unsubscribe survives the *next* crash too.
        """
        self.coordinator.ecall("authorize", client_id)
        shard = self._home.get(subscription_id)
        if shard is None:
            raise ConfigurationError(
                "no subscription %r in the plane" % subscription_id
            )
        if shard.enclave.destroyed:
            shard = self.recover_shard(shard.shard_id)
        shard.enclave.ecall("remove", subscription_id, client_id)
        shard.database_bytes -= self.record_bytes
        del self._home[subscription_id]
        self._log_mutation(shard, ("remove", subscription_id, client_id))
        self._tel_unsubscribes.inc()
        return True

    # -- publication plane ---------------------------------------------

    def _publish_once(self, envelope):
        """One coverage-tracked fan-out; returns ``(routed, missing)``.

        Every member shard is asked -- a dead one raises
        :class:`~repro.errors.EnclaveLostError` instead of answering,
        and the coordinator's finalize reports it missing because its
        authenticated match blob never arrived.
        """
        clock = self.platform.clock
        coordinator_start = clock.now
        # The publish root span's duration is *computed* (coordinator
        # cycles plus the slowest shard's cycles -- exactly
        # last_publish_cycles), so reserve its identity now, let the
        # in-enclave spans parent under it across the ECALL boundary,
        # and record it once the latency is known.
        reservation = self.tracer.reserve() if self.tracer.enabled else None
        token, sealed = self.coordinator.ecall(
            "ingest", envelope, trace=reservation
        )

        def match_on(shard):
            if not self._shard_reachable(shard):
                # The request never crosses the partition; the enclave
                # is alive but its authenticated match blob cannot
                # arrive, so finalize will report it missing.
                return None, 0, 0
            start = shard.platform.clock.now
            try:
                blob, visits = shard.enclave.ecall(
                    "match", sealed, trace=reservation
                )
            except EnclaveLostError:
                return None, 0, shard.platform.clock.now - start
            return blob, visits, shard.platform.clock.now - start

        # Shards sharing a platform (several enclaves on one node)
        # match *serially* within that machine: their cycle charges
        # land on one shared clock/LLC/EPC, and a fixed order keeps
        # two same-seed runs byte-identical.  Distinct machines still
        # run concurrently on the pool, and the critical path is the
        # busiest machine's total, not the slowest single shard.
        groups = []
        by_platform = {}
        for shard in self.shards:
            key = id(shard.platform)
            if key not in by_platform:
                by_platform[key] = []
                groups.append(by_platform[key])
            by_platform[key].append(shard)

        def match_group(group):
            return [match_on(shard) for shard in group]

        if len(groups) == 1:
            grouped = [match_group(groups[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                grouped = list(pool.map(match_group, groups))
        by_shard = {}
        for group, group_results in zip(groups, grouped):
            for shard, result in zip(group, group_results):
                by_shard[shard.shard_id] = result
        results = [by_shard[shard.shard_id] for shard in self.shards]
        slowest = max(
            sum(elapsed for _b, _v, elapsed in group_results)
            for group_results in grouped
        )
        # Observed from this (single) driver thread after the pool
        # joined: per-shard match latencies plus the coverage wait --
        # how long this publication stayed parked in the coordinator
        # waiting for its slowest partition.
        for _blob, _visits, elapsed in results:
            self._tel_shard_match.observe(elapsed)
        self._tel_coverage_wait.observe(slowest)
        self.last_visits = sum(visits for _b, visits, _e in results)
        self._tel_visits.inc(self.last_visits)
        routed, missing = self.coordinator.ecall(
            "finalize", token,
            [blob for blob, _v, _e in results if blob is not None],
            trace=reservation,
        )
        self.last_publish_cycles = (
            clock.now - coordinator_start
        ) + slowest
        self.publish_cycles += self.last_publish_cycles
        self.publications_routed += 1
        self._tel_publications.inc()
        self._tel_publish_cycles.observe(self.last_publish_cycles)
        if reservation is not None:
            self.tracer.record_reserved(
                reservation, "scbr.publish", coordinator_start,
                coordinator_start + self.last_publish_cycles,
                shards=len(self.shards), missing=len(missing),
            )
        return routed, tuple(missing)

    def publish_routed(self, envelope):
        """Route a publication; returns (subscriber, envelope) pairs.

        Never a silently smaller match set: if any enrolled partition
        fails to answer, either the missing shards are recovered and
        the publication re-matched until coverage is complete
        (``on_partial="retry"``; exhausting the retry policy raises
        :class:`~repro.errors.RetryExhaustedError`), or a
        :class:`PartialCoverage` naming the dark partitions is returned
        (``on_partial="report"``).
        """
        routed, missing = self._publish_once(envelope)
        if not missing:
            return routed
        self.partial_publishes += 1
        self._tel_partial.inc()
        if self.on_partial == "report":
            return PartialCoverage(routed=routed, missing=missing)

        def heal_and_republish(attempt):
            self._heal_dark_shards()
            retried, still_missing = self._publish_once(envelope)
            if still_missing:
                raise PartialCoverageError(
                    "publish covered %d/%d partitions"
                    % (len(self.shards) - len(still_missing),
                       len(self.shards)),
                    missing=still_missing,
                )
            return retried

        return retry_call(
            heal_and_republish, self.retry_policy, self.backoff
        )

    def _heal_dark_shards(self):
        """Recover every partition that cannot answer a publish.

        In the base plane "dark" means destroyed.  Node-bound planes
        widen this to unreachable-but-live shards: a partitioned
        partition is conservatively respawned on a reachable node (the
        same harmless-false-positive degradation as the phi detector's)
        rather than stalling coverage until the partition heals.
        """
        dark = [
            shard.shard_id for shard in self.shards
            if shard.enclave.destroyed
        ]
        if dark:
            self.recover_shards(dark)

    def publish(self, envelope):
        """Route a publication; returns the sealed notifications."""
        routed = self.publish_routed(envelope)
        if isinstance(routed, PartialCoverage):
            return routed
        return [notification for _subscriber, notification in routed]

    # -- observability -------------------------------------------------

    def export_telemetry(self):
        """Sealed telemetry blobs from every plane enclave, as
        ``(source, blob)`` pairs.

        The driver cannot open them -- they are AEAD-sealed under the
        telemetry key provisioned at setup; the operator holding that
        key opens them with :func:`repro.telemetry.open_snapshot`.
        Enclaves running without a telemetry key contribute nothing,
        and a dark shard is skipped: its telemetry died with its
        enclave state, exactly like the partition it described.
        """
        blobs = []
        try:
            blob = self.coordinator.ecall("telemetry_export")
        except EnclaveLostError:
            blob = None
        if blob is not None:
            blobs.append(("coordinator", blob))
        for shard in self.shards:
            try:
                blob = shard.enclave.ecall("telemetry_export")
            except EnclaveLostError:
                continue
            if blob is not None:
                blobs.append(("shard-%d" % shard.shard_id, blob))
        return blobs

    def stats(self):
        """Aggregated plane counters (one stats ecall per live shard).

        A dark shard contributes a zeroed row flagged ``down`` -- the
        plane's operational surface stays queryable during an outage.
        """
        per_shard = []
        for shard in self.shards:
            try:
                per_shard.append(shard.enclave.ecall("stats"))
            except EnclaveLostError:
                per_shard.append({
                    "shard_id": shard.shard_id,
                    "subscriptions": 0,
                    "database_bytes": 0,
                    "resident_bytes": 0,
                    "visits_last_match": 0,
                    "version": -1,
                    "down": True,
                })
        return {
            "shards": len(per_shard),
            "subscriptions": sum(s["subscriptions"] for s in per_shard),
            "database_bytes": sum(s["database_bytes"] for s in per_shard),
            "max_shard_bytes": max(
                (s["database_bytes"] for s in per_shard), default=0
            ),
            "splits": self.splits,
            "migrated": self.migrated,
            "shard_failures": self.shard_failures,
            "recoveries": len(self.recovery_episodes),
            "snapshots": self.snapshots_taken,
            "partial_publishes": self.partial_publishes,
            "per_shard": per_shard,
        }

    def recovery_latencies(self):
        """Virtual seconds each recovery episode took to heal."""
        return [e["recovery_seconds"] for e in self.recovery_episodes]

    def check_invariants(self):
        """Leak and consistency audit across the whole plane.

        - every retired enclave (dead and replaced) released its memory:
          zero resident bytes and nothing left under its name in its
          platform's shared EPC;
        - global resident bytes equal the sum over *live* shard
          enclaves -- dead state contributes nothing;
        - the home map points only at current member shards.
        """
        live_bytes = 0
        for shard in self.shards:
            memory = shard.enclave.memory
            if shard.enclave.destroyed:
                if memory.resident_bytes or not memory.released:
                    raise ConfigurationError(
                        "dead shard %d still holds %d resident bytes"
                        % (shard.shard_id, memory.resident_bytes)
                    )
            else:
                live_bytes += memory.resident_bytes
        total_bytes = live_bytes
        for old in self._retired:
            memory = old.enclave.memory
            total_bytes += memory.resident_bytes
            if memory.resident_bytes or not memory.released:
                raise ConfigurationError(
                    "retired shard %d leaked %d resident bytes"
                    % (old.shard_id, memory.resident_bytes)
                )
            if memory.epc is not None:
                for key in memory.epc.resident_page_keys():
                    if key[0] == memory.name:
                        raise ConfigurationError(
                            "retired shard %d left EPC page %r resident"
                            % (old.shard_id, key)
                        )
        if total_bytes != live_bytes:
            raise ConfigurationError(
                "plane resident bytes %d != live shard bytes %d"
                % (total_bytes, live_bytes)
            )
        for subscription_id, shard in self._home.items():
            if shard not in self.shards:
                raise ConfigurationError(
                    "subscription %r homed on a retired shard"
                    % (subscription_id,)
                )
        return True
