"""Failure detection for the sharded SCBR matching plane.

The paper's orchestration story (Section VI, Figure 5) is dominated by
*detection*: ~2.4 s from failure to recovery, most of it spent noticing
that anything failed at all.  The sharded plane cannot afford even a
fraction of that silently -- a dead shard's partition simply stops
matching, which is a correctness hole, not just a latency blip.  This
module supplies the noticing:

- :class:`ShardHealthPolicy` -- heartbeat cadence and suspicion
  thresholds;
- :class:`ShardHealthMonitor` -- a phi-accrual-style failure detector
  (Hayashibara et al.) over heartbeats on the *simulated* clock: each
  shard's inter-heartbeat intervals feed a sliding window, and the
  suspicion level ``phi`` grows with the time since the last beat
  measured in units of the observed mean interval.  Crossing
  ``phi_threshold`` declares the shard down exactly once per outage
  episode; a recovered shard re-registers and starts clean.

The monitor never touches enclaves itself.  The plane driver probes its
shards (a cheap ``ping`` ecall) each period and reports the beats that
actually arrived; a destroyed enclave or a chaos-dropped heartbeat
simply fails to beat, and suspicion accrues.  Lost heartbeats from a
*live* shard can therefore cause a false positive -- the accepted cost
of any timeout-style detector -- which the plane's recovery path
handles safely: respawn-from-snapshot is idempotent with respect to the
partition's contents.
"""

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

# log10(e): converts the exponential-model survival probability
# exp(-t/mean) into the phi scale -log10(P) = (t/mean) * log10(e).
_LOG10_E = math.log10(math.e)


@dataclass(frozen=True)
class ShardHealthPolicy:
    """Cadence and thresholds of the shard failure detector."""

    heartbeat_period: float = 0.0005   # 0.5 ms, the orchestrator's cadence
    phi_threshold: float = 4.0         # suspicion level that means "down"
    window: int = 32                   # inter-arrival samples retained
    min_samples: int = 3               # before this, use startup_timeout
    startup_timeout: float = 0.005     # fixed timeout while the window fills

    def __post_init__(self):
        if self.heartbeat_period <= 0.0:
            raise ConfigurationError("heartbeat_period must be positive")
        if self.phi_threshold <= 0.0:
            raise ConfigurationError("phi_threshold must be positive")
        if self.window < 1 or self.min_samples < 1:
            raise ConfigurationError("window sizes must be >= 1")
        if self.startup_timeout <= 0.0:
            raise ConfigurationError("startup_timeout must be positive")


@dataclass
class ShardDetection:
    """One shard-down verdict from the detector."""

    shard_id: int
    detected_at: float
    phi: float
    onset: Optional[float] = None

    @property
    def detection_latency(self):
        """Seconds from (externally recorded) onset to detection."""
        if self.onset is None:
            return None
        return self.detected_at - self.onset


class ShardHealthMonitor:
    """Phi-style accrual failure detection over shard heartbeats.

    Tracks, per registered shard, the last heartbeat time and a sliding
    window of inter-arrival intervals.  :meth:`poll` returns the shards
    that just crossed the suspicion threshold (each at most once per
    outage); the caller reacts -- respawning the shard, reporting the
    anomaly -- and calls :meth:`register` again once the replacement
    serves, which resets the episode.
    """

    def __init__(self, env, policy=None, injector=None):
        self.env = env
        self.policy = policy or ShardHealthPolicy()
        self.injector = injector
        self.detections = []
        self._last = {}
        self._intervals = {}
        self._down = set()
        self._onsets = {}

    # -- bookkeeping ----------------------------------------------------

    def register(self, shard_id):
        """Start (or restart) tracking a shard as of now.

        Called when a shard joins the plane and again when a
        replacement finishes recovery; either way the shard begins a
        fresh episode with an empty suspicion history.
        """
        self._last[shard_id] = self.env.now
        self._intervals[shard_id] = deque(maxlen=self.policy.window)
        self._down.discard(shard_id)
        self._onsets.pop(shard_id, None)

    def forget(self, shard_id):
        """Stop tracking a shard entirely.

        The shard's latched detections are purged along with its
        interval history and episode state: a later re-register of the
        same id is a brand-new shard as far as the detector is
        concerned -- clean phi estimate, no ghost verdicts for
        node-level correlation to trip over.
        """
        self._last.pop(shard_id, None)
        self._intervals.pop(shard_id, None)
        self._down.discard(shard_id)
        self._onsets.pop(shard_id, None)
        self.detections = [
            detection for detection in self.detections
            if detection.shard_id != shard_id
        ]

    def record_onset(self, shard_id, time=None):
        """Fault injectors call this so detection latency is measurable."""
        self._onsets[shard_id] = time if time is not None else self.env.now

    def beat(self, shard_id):
        """A heartbeat from ``shard_id`` arrived now."""
        if shard_id not in self._last:
            self.register(shard_id)
            return
        now = self.env.now
        interval = now - self._last[shard_id]
        if interval > 0.0:
            self._intervals[shard_id].append(interval)
        self._last[shard_id] = now

    # -- suspicion ------------------------------------------------------

    def phi(self, shard_id, now=None):
        """Current suspicion level for ``shard_id``.

        With fewer than ``min_samples`` observed intervals the detector
        falls back to a fixed startup timeout (phi jumps past the
        threshold once ``startup_timeout`` elapses beat-free);
        afterwards phi is the exponential-model accrual
        ``(elapsed / mean_interval) * log10(e)``.
        """
        if shard_id not in self._last:
            raise ConfigurationError("shard %r is not tracked" % (shard_id,))
        now = self.env.now if now is None else now
        elapsed = now - self._last[shard_id]
        if elapsed <= 0.0:
            return 0.0
        intervals = self._intervals[shard_id]
        if len(intervals) < self.policy.min_samples:
            if elapsed >= self.policy.startup_timeout:
                return self.policy.phi_threshold
            return 0.0
        mean = sum(intervals) / len(intervals)
        return (elapsed / mean) * _LOG10_E

    def suspects(self, shard_id):
        """Whether ``shard_id``'s suspicion crossed the threshold."""
        return self.phi(shard_id) >= self.policy.phi_threshold

    def tracked(self):
        """Shard ids currently tracked."""
        return sorted(self._last)

    def poll(self):
        """Shards that just went from healthy to suspected-down.

        Each outage episode yields the shard id exactly once (further
        polls skip shards already declared down until :meth:`register`
        resets them); a :class:`ShardDetection` is logged per verdict.
        """
        newly_down = []
        now = self.env.now
        for shard_id in sorted(self._last):
            if shard_id in self._down:
                continue
            level = self.phi(shard_id, now)
            if level >= self.policy.phi_threshold:
                self._down.add(shard_id)
                self.detections.append(
                    ShardDetection(
                        shard_id=shard_id,
                        detected_at=now,
                        phi=level,
                        onset=self._onsets.get(shard_id),
                    )
                )
                newly_down.append(shard_id)
        return newly_down

    def down(self):
        """Shard ids currently declared down."""
        return sorted(self._down)

    def detection_latencies(self):
        """Onset-to-detection latencies for detections with onsets."""
        return [
            detection.detection_latency
            for detection in self.detections
            if detection.detection_latency is not None
        ]
