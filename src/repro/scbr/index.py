"""The containment-poset matching index.

Subscriptions form a forest ordered by the covering relation: each node
covers all of its descendants.  Matching a publication walks from the
roots and prunes a node's entire subtree as soon as the node fails --
a publication that does not satisfy a *general* filter cannot satisfy a
*more specific* one.  This is the "data structures that exploit
containment relations between filters" design of Section V-B.

Memory accounting: when constructed with a
:class:`~repro.sgx.memory.SimulatedMemory`, each subscription gets a
contiguous record allocated at insertion time, and every visit during
matching charges a hot-field read plus predicate-evaluation cycles.
Running the identical index against an enclave memory and a native
memory is exactly the experiment behind the paper's Figure 3.
"""

from repro.errors import ConfigurationError

# Bytes of a subscription record the matcher actually reads per visit
# (constraint summary); the rest of the record (strings, bookkeeping)
# determines the database footprint, not the per-visit traffic.
HOT_BYTES = 64
# Cycles to evaluate one subscription's predicates against an event.
EVAL_CYCLES = 150
# Default resident footprint of a subscription record.
DEFAULT_RECORD_BYTES = 512


class _Node:
    __slots__ = ("subscription", "children", "region")

    def __init__(self, subscription, region):
        self.subscription = subscription
        self.children = []
        self.region = region


class ContainmentIndex:
    """Forest of subscriptions ordered by covering."""

    def __init__(self, memory=None, record_bytes=DEFAULT_RECORD_BYTES,
                 hot_bytes=HOT_BYTES, eval_cycles=EVAL_CYCLES):
        self.memory = memory
        self.record_bytes = record_bytes
        self.hot_bytes = hot_bytes
        self.eval_cycles = eval_cycles
        self._roots = []
        self._count = 0
        self._nodes = {}
        self._parents = {}
        self.visits_last_match = 0

    def __contains__(self, subscription_id):
        return subscription_id in self._nodes

    def __len__(self):
        return self._count

    @property
    def database_bytes(self):
        """Total resident footprint of the subscription database."""
        return self._count * self.record_bytes

    def _allocate(self, subscription):
        if self.memory is None:
            return None
        return self.memory.allocate(
            self.record_bytes, label="sub-%s" % subscription.subscription_id
        )

    def _visit(self, node):
        """Charge one node visit (hot read + predicate evaluation)."""
        if self.memory is not None:
            self.memory.access(node.region, size=self.hot_bytes)
            self.memory.compute(self.eval_cycles)

    def insert(self, subscription):
        """Add a subscription below its most specific covering node.

        Descends greedily: while some child of the current position
        covers the new subscription, move down.  Any siblings the new
        subscription covers are re-parented beneath it, preserving the
        forest invariant (every node covers its descendants).
        """
        if subscription.subscription_id in self._nodes:
            raise ConfigurationError(
                "subscription %r already indexed" % subscription.subscription_id
            )
        node = _Node(subscription, self._allocate(subscription))
        siblings = self._roots
        parent = None
        descending = True
        while descending:
            descending = False
            for candidate in siblings:
                if candidate.subscription.covers(subscription):
                    siblings = candidate.children
                    parent = candidate
                    descending = True
                    break
        covered = [c for c in siblings if subscription.covers(c.subscription)]
        for child in covered:
            siblings.remove(child)
            node.children.append(child)
            self._parents[child.subscription.subscription_id] = node
        siblings.append(node)
        self._nodes[subscription.subscription_id] = node
        self._parents[subscription.subscription_id] = parent
        self._count += 1
        return node

    def remove(self, subscription_id):
        """Unsubscribe: detach the node, re-attach its children.

        The children are covered by the removed node, which its parent
        covers transitively, so hoisting them one level preserves the
        forest invariant.
        """
        node = self._nodes.pop(subscription_id, None)
        if node is None:
            raise ConfigurationError(
                "no subscription %r in the index" % subscription_id
            )
        parent = self._parents.pop(subscription_id)
        siblings = self._roots if parent is None else parent.children
        siblings.remove(node)
        for child in node.children:
            siblings.append(child)
            self._parents[child.subscription.subscription_id] = parent
        node.children = []
        if self.memory is not None and node.region is not None:
            # Without this, an unsubscribed record stays resident in
            # the EPC forever and keeps inflating paging pressure.
            self.memory.free(node.region)
        self._count -= 1
        return node.subscription

    def match(self, publication):
        """IDs of all subscriptions matching ``publication``.

        Visits a node only if all its ancestors matched; counts visits
        in :attr:`visits_last_match` for the comparison-reduction
        ablation.
        """
        matched = []
        visits = 0
        stack = list(self._roots)
        while stack:
            node = stack.pop()
            visits += 1
            self._visit(node)
            if node.subscription.matches(publication):
                matched.append(node.subscription.subscription_id)
                stack.extend(node.children)
        self.visits_last_match = visits
        return set(matched)

    def subscriptions(self):
        """All stored subscriptions (pre-order)."""
        result = []
        stack = list(self._roots)
        while stack:
            node = stack.pop()
            result.append(node.subscription)
            stack.extend(node.children)
        return result

    def roots(self):
        """The root subscriptions (most general filter of each chain)."""
        return [node.subscription for node in self._roots]

    def covers_any_root(self, subscription):
        """Whether some root of this forest covers ``subscription``.

        A root covering the candidate means the candidate would land
        inside an existing covering chain here -- the signal a
        covering-aware shard planner uses to keep chains together.
        """
        return any(
            node.subscription.covers(subscription) for node in self._roots
        )

    def subtree_size(self, subscription_id):
        """Number of subscriptions in the subtree rooted at ``id``."""
        node = self._nodes.get(subscription_id)
        if node is None:
            raise ConfigurationError(
                "no subscription %r in the index" % subscription_id
            )
        count = 0
        stack = [node]
        while stack:
            current = stack.pop()
            count += 1
            stack.extend(current.children)
        return count

    def extract_subtrees(self, target_bytes):
        """Detach whole root subtrees totalling >= ``target_bytes``.

        Used by shard rebalancing: evacuating complete subtrees keeps
        every covering chain intact, so re-inserting the returned
        subscriptions (pre-order: parents first) into another index
        reproduces the same forest structure.  Records are freed from
        this index's memory.  Returns the extracted subscriptions;
        extracts at most all roots, and always leaves the forest
        consistent (:meth:`check_invariants` holds afterwards).
        """
        extracted = []
        moved_bytes = 0
        # Largest subtrees first: fewest detach operations to reach the
        # target, and the donor keeps its many small independent roots.
        order = sorted(
            self._roots,
            key=lambda node: (
                -self.subtree_size(node.subscription.subscription_id),
                node.subscription.subscription_id,
            ),
        )
        for root in order:
            if moved_bytes >= target_bytes:
                break
            self._roots.remove(root)
            stack = [root]
            pre_order = []
            while stack:
                node = stack.pop()
                pre_order.append(node)
                stack.extend(reversed(node.children))
            for node in pre_order:
                subscription_id = node.subscription.subscription_id
                del self._nodes[subscription_id]
                del self._parents[subscription_id]
                if self.memory is not None and node.region is not None:
                    self.memory.free(node.region)
                node.children = []
                self._count -= 1
                moved_bytes += self.record_bytes
                extracted.append(node.subscription)
        return extracted

    def depth(self):
        """Maximum chain length (diagnostic for workload skew)."""
        best = 0
        stack = [(node, 1) for node in self._roots]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            stack.extend((child, depth + 1) for child in node.children)
        return best

    def check_invariants(self):
        """Verify every node covers all of its descendants."""
        stack = [(node, []) for node in self._roots]
        while stack:
            node, ancestors = stack.pop()
            for ancestor in ancestors:
                if not ancestor.subscription.covers(node.subscription):
                    raise ConfigurationError(
                        "index invariant violated: %r does not cover %r"
                        % (ancestor.subscription, node.subscription)
                    )
            for child in node.children:
                stack.append((child, ancestors + [node]))
        return True
