"""A network of SCBR brokers with covering-based forwarding.

Content-based routing proper: brokers form an acyclic overlay; each
broker matches inside its own enclave and forwards publications only on
links behind which a matching subscription lives.  Subscription
propagation applies the classic covering optimisation (Siena): a
subscription is **not** forwarded over a link if a subscription already
forwarded over that link covers it -- the upstream broker would route a
superset of the traffic anyway.  This shrinks the routing state and the
subscription traffic the paper's Section V-B alludes to with
"containment relations between filters".

Confidentiality: every link has its own AEAD key; publications and
subscriptions are re-sealed per hop, so a compromised link observes
only ciphertext and per-hop envelope counts.
"""

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.scbr.filters import Publication
from repro.scbr.index import ContainmentIndex
from repro.scbr.messages import (
    EncryptedEnvelope,
    deserialize_publication,
    deserialize_subscription,
    serialize_publication,
    serialize_subscription,
)


class BrokerLink:
    """One directed half of a broker-to-broker connection."""

    def __init__(self, source, destination, key):
        self.source = source
        self.destination = destination
        self.key = key
        self.publications_forwarded = 0
        self.subscriptions_forwarded = 0
        self.subscriptions_suppressed = 0

    def seal_subscription(self, subscription):
        self.subscriptions_forwarded += 1
        return EncryptedEnvelope.seal(
            self.key,
            self.source.name,
            "subscribe",
            serialize_subscription(subscription),
        )

    def seal_publication(self, publication, serialized=None):
        """Seal for this hop; ``serialized`` lets a broker forwarding to
        several neighbours serialize the publication once, not per link."""
        self.publications_forwarded += 1
        if serialized is None:
            serialized = serialize_publication(publication)
        return EncryptedEnvelope.seal(
            self.key,
            self.source.name,
            "publish",
            serialized,
        )


class Broker:
    """One broker: a local matching enclave plus per-link routing state.

    ``memory`` (optional) charges matching work to an enclave memory so
    network-wide experiments compose with the SGX cost model.
    """

    def __init__(self, name, memory=None):
        self.name = name
        # Local subscriptions: subscription_id -> client.
        self.local_subscribers = {}
        self.index = ContainmentIndex(memory=memory)
        # subscription_id -> origin ("local" or a neighbour name).
        self._origin = {}
        # Per neighbour: subscriptions we forwarded to them.
        self._forwarded = {}
        self.links = {}
        self.deliveries = []
        self.matches_performed = 0

    def connect(self, other, key=None):
        """Create the two directed links between this broker and other."""
        if other.name in self.links:
            raise ConfigurationError(
                "brokers %s and %s already connected" % (self.name, other.name)
            )
        key = key or AeadKey.generate()
        self.links[other.name] = BrokerLink(self, other, key)
        other.links[self.name] = BrokerLink(other, self, key)

    def _neighbours(self):
        return list(self.links)

    # --- subscription plane ---

    def subscribe_local(self, subscription, client):
        """A client attached to this broker subscribes."""
        self.local_subscribers[subscription.subscription_id] = client
        self._admit(subscription, origin="local")

    def _admit(self, subscription, origin):
        self.index.insert(subscription)
        self._origin[subscription.subscription_id] = origin
        # Propagate to every neighbour except where it came from,
        # applying the covering optimisation per link.
        for neighbour in self._neighbours():
            if neighbour == origin:
                continue
            forwarded = self._forwarded.setdefault(neighbour, [])
            link = self.links[neighbour]
            if any(existing.covers(subscription) for existing in forwarded):
                link.subscriptions_suppressed += 1
                continue
            forwarded.append(subscription)
            envelope = link.seal_subscription(subscription)
            link.destination.receive_subscription(envelope, from_broker=self.name)

    def receive_subscription(self, envelope, from_broker):
        """A neighbour forwarded a subscription to us."""
        link = self.links[from_broker]
        if envelope.kind != "subscribe":
            raise IntegrityError("expected a subscription envelope")
        subscription = deserialize_subscription(envelope.open(link.key))
        self._admit(subscription, origin=from_broker)

    # --- publication plane ---

    def publish_local(self, publication):
        """A client attached to this broker publishes."""
        return self._route(publication, origin=None)

    def receive_publication(self, envelope, from_broker):
        """A neighbour forwarded a publication to us."""
        link = self.links[from_broker]
        if envelope.kind != "publish":
            raise IntegrityError("expected a publication envelope")
        publication = deserialize_publication(envelope.open(link.key))
        return self._route(publication, origin=from_broker)

    def _route(self, publication, origin):
        """Match locally, deliver to local clients, forward per link."""
        self.matches_performed += 1
        matched = self.index.match(publication)
        forward_to = set()
        delivered = []
        for subscription_id in sorted(matched):
            where = self._origin[subscription_id]
            if where == "local":
                client = self.local_subscribers[subscription_id]
                self.deliveries.append((client, subscription_id, publication))
                delivered.append((client, subscription_id))
            elif where != origin:
                forward_to.add(where)
        serialized = None
        for neighbour in sorted(forward_to):
            if serialized is None:
                serialized = serialize_publication(publication)
            link = self.links[neighbour]
            envelope = link.seal_publication(publication, serialized)
            delivered.extend(
                link.destination.receive_publication(envelope, self.name)
            )
        return delivered


class ScbrNetwork:
    """An acyclic broker overlay."""

    def __init__(self):
        self.brokers = {}

    def add_broker(self, name, memory=None):
        """Create a broker."""
        if name in self.brokers:
            raise ConfigurationError("duplicate broker %r" % name)
        broker = Broker(name, memory=memory)
        self.brokers[name] = broker
        return broker

    def connect(self, first, second):
        """Link two brokers (the overlay must stay acyclic)."""
        if self._reaches(first, second):
            raise ConfigurationError(
                "connecting %s-%s would create a cycle" % (first, second)
            )
        self.brokers[first].connect(self.brokers[second])

    def _reaches(self, start, goal):
        seen = set()
        frontier = [start]
        while frontier:
            name = frontier.pop()
            if name == goal:
                return True
            if name in seen or name not in self.brokers:
                continue
            seen.add(name)
            frontier.extend(self.brokers[name].links)
        return False

    def subscribe(self, broker_name, subscription, client):
        """Attach a client subscription at a broker."""
        self.brokers[broker_name].subscribe_local(subscription, client)

    def publish(self, broker_name, attributes, payload=b""):
        """Publish at a broker; returns [(client, subscription_id), ...]."""
        publication = Publication(attributes=attributes, payload=payload)
        return self.brokers[broker_name].publish_local(publication)

    def forwarding_stats(self):
        """Aggregated link counters (for the routing ablation)."""
        forwarded = suppressed = publications = 0
        for broker in self.brokers.values():
            for link in broker.links.values():
                forwarded += link.subscriptions_forwarded
                suppressed += link.subscriptions_suppressed
                publications += link.publications_forwarded
        # Each undirected connection contributes two directed links, but
        # counters are incremented on the sending side only.
        return {
            "subscriptions_forwarded": forwarded,
            "subscriptions_suppressed": suppressed,
            "publications_forwarded": publications,
        }
