"""The enclave-hosted SCBR router.

The router's matching engine (a :class:`ContainmentIndex` backed by
enclave memory) lives entirely in enclave state; the code outside the
enclave only moves :class:`EncryptedEnvelope` objects around.  Matched
publications are re-encrypted per subscriber before leaving the
enclave, so the broker never observes content, subscriptions, or even
which subscriber matched what beyond envelope counts.
"""

from repro.errors import AttestationError, IntegrityError
from repro.scbr.index import ContainmentIndex
from repro.scbr.keyexchange import (
    enclave_channel_accept,
    enclave_channel_offer,
)
from repro.scbr.messages import (
    EncryptedEnvelope,
    NotificationSealer,
    deserialize_publication,
    deserialize_subscription,
    open_notification,
    serialize_publication,
    serialize_subscription,
)
from repro.sgx.enclave import EnclaveCode

# In-enclave data-plane cycle charges for the publish fan-out (the
# matching walk is charged by the index through enclave memory; these
# cover the crypto and serialisation work per notification).  AES-class
# sealing streams at a few cycles/byte; the setup constant folds nonce
# derivation, MAC finalisation, and envelope framing.
SERIALIZE_CYCLES_PER_BYTE = 2
SEAL_SETUP_CYCLES = 2_000
SEAL_CYCLES_PER_BYTE = 4


def _client_key(ctx, client_id):
    key = ctx.state.get("client_keys", {}).get(client_id)
    if key is None:
        raise AttestationError("client %r has not established a key" % client_id)
    return key


def enclave_setup(ctx, record_bytes=512):
    """ECALL: initialise the matching index in enclave memory."""
    ctx.state["index"] = ContainmentIndex(
        memory=ctx.memory, record_bytes=record_bytes
    )
    ctx.state["subscriber_of"] = {}
    ctx.state["notification_sealer"] = NotificationSealer()
    return True


def enclave_subscribe(ctx, envelope):
    """ECALL: decrypt, authenticate, and index a subscription."""
    key = _client_key(ctx, envelope.sender)
    if envelope.kind != "subscribe":
        raise IntegrityError("expected a subscription envelope")
    subscription = deserialize_subscription(envelope.open(key))
    if subscription.subscriber != envelope.sender:
        raise IntegrityError(
            "subscription claims subscriber %r but was sent by %r"
            % (subscription.subscriber, envelope.sender)
        )
    ctx.state["index"].insert(subscription)
    ctx.state["subscriber_of"][subscription.subscription_id] = envelope.sender
    return subscription.subscription_id


def _open_publication(ctx, envelope):
    key = _client_key(ctx, envelope.sender)
    if envelope.kind != "publish":
        raise IntegrityError("expected a publication envelope")
    return deserialize_publication(envelope.open(key))


def _fan_out(ctx, publication):
    """Match and seal the per-subscriber notifications for a publication.

    The hot path of the router:

    - the publication is serialized exactly once per publish;
    - matches are grouped (and thereby deduplicated) by subscriber, so
      a subscriber holding several matching subscriptions receives one
      envelope carrying all of its matched subscription ids;
    - each envelope is one sealed batch (one nonce+tag) produced
      through a cached per-subscriber sealing context.

    Returns sorted ``(subscriber, envelope)`` pairs.
    """
    matched = ctx.state["index"].match(publication)
    if not matched:
        return []
    serialized = serialize_publication(publication)
    ctx.compute(SERIALIZE_CYCLES_PER_BYTE * len(serialized))
    by_subscriber = {}
    subscriber_of = ctx.state["subscriber_of"]
    for subscription_id in sorted(matched):
        subscriber = subscriber_of[subscription_id]
        by_subscriber.setdefault(subscriber, []).append(subscription_id)
    sealer = ctx.state["notification_sealer"]
    routed = []
    for subscriber in sorted(by_subscriber):
        envelope = sealer.seal(
            subscriber,
            _client_key(ctx, subscriber),
            serialized,
            by_subscriber[subscriber],
        )
        ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(envelope.blob))
        routed.append((subscriber, envelope))
    return routed


def enclave_publish(ctx, envelope):
    """ECALL: decrypt, match, and emit one notification per subscriber."""
    return [
        notification
        for _subscriber, notification in _fan_out(
            ctx, _open_publication(ctx, envelope)
        )
    ]


def enclave_publish_routed(ctx, envelope):
    """ECALL: like ``publish``, but says *who* each notification is for.

    Returns ``(subscriber_id, notification)`` pairs.  The subscriber id
    is metadata the broker already learns by delivering the envelope,
    so exposing it leaks nothing new -- but it lets a replicating
    broker keep a per-subscriber redelivery log for failover replay.
    """
    return _fan_out(ctx, _open_publication(ctx, envelope))


def enclave_publish_unbatched(ctx, envelope):
    """ECALL: the seed fan-out path, kept as the A10 ablation baseline.

    Re-serializes the publication and seals a full envelope for every
    matched *subscription* -- a subscriber with several matching
    subscriptions receives duplicate notifications.  Nothing should
    call this outside the benchmark comparing it against
    :func:`enclave_publish`.
    """
    publication = _open_publication(ctx, envelope)
    matched = ctx.state["index"].match(publication)
    notifications = []
    for subscription_id in sorted(matched):
        subscriber = ctx.state["subscriber_of"][subscription_id]
        subscriber_key = _client_key(ctx, subscriber)
        serialized = serialize_publication(publication)
        ctx.compute(SERIALIZE_CYCLES_PER_BYTE * len(serialized))
        envelope_out = EncryptedEnvelope.seal(
            subscriber_key, "router", "notify", serialized
        )
        ctx.compute(
            SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(envelope_out.blob)
        )
        notifications.append(envelope_out)
    return notifications


def enclave_unsubscribe(ctx, client_id, subscription_id):
    """ECALL: remove a subscription; only its owner may do so."""
    _client_key(ctx, client_id)  # the client must hold a channel
    owner = ctx.state["subscriber_of"].get(subscription_id)
    if owner != client_id:
        raise IntegrityError(
            "client %r does not own subscription %r" % (client_id,
                                                        subscription_id)
        )
    ctx.state["index"].remove(subscription_id)
    del ctx.state["subscriber_of"][subscription_id]
    return True


def enclave_stats(ctx):
    """ECALL: operational counters (no content)."""
    index = ctx.state["index"]
    return {
        "subscriptions": len(index),
        "database_bytes": index.database_bytes,
        "visits_last_match": index.visits_last_match,
    }


def enclave_checkpoint(ctx):
    """ECALL: seal the subscription database to this enclave identity.

    The sealed blob can live on the untrusted disk; only the same
    router code on the same platform can restore it (MRENCLAVE
    policy).  Client channel keys are deliberately *not* persisted --
    they are ephemeral, and clients re-attest after a restart.
    """
    import json

    index = ctx.state["index"]
    payload = json.dumps(
        {
            "subscriptions": [
                serialize_subscription(subscription).decode("utf-8")
                for subscription in index.subscriptions()
            ],
            "subscriber_of": ctx.state["subscriber_of"],
        },
        sort_keys=True,
    ).encode("utf-8")
    return ctx.seal(payload)


def enclave_restore(ctx, blob, record_bytes=512):
    """ECALL: rebuild the subscription database from a sealed blob."""
    import json

    payload = json.loads(ctx.unseal(blob).decode("utf-8"))
    enclave_setup(ctx, record_bytes)
    index = ctx.state["index"]
    for raw in payload["subscriptions"]:
        index.insert(deserialize_subscription(raw.encode("utf-8")))
    ctx.state["subscriber_of"] = dict(payload["subscriber_of"])
    return len(index)


ROUTER_ENTRY_POINTS = {
    "setup": enclave_setup,
    "channel_offer": enclave_channel_offer,
    "channel_accept": enclave_channel_accept,
    "subscribe": enclave_subscribe,
    "unsubscribe": enclave_unsubscribe,
    "publish": enclave_publish,
    "publish_routed": enclave_publish_routed,
    "publish_unbatched": enclave_publish_unbatched,
    "stats": enclave_stats,
    "checkpoint": enclave_checkpoint,
    "restore": enclave_restore,
}

ROUTER_CODE = EnclaveCode("scbr-router", ROUTER_ENTRY_POINTS)


class ScbrRouter:
    """The untrusted host side of the router."""

    def __init__(self, platform, record_bytes=512):
        self.platform = platform
        self.enclave = platform.load_enclave(ROUTER_CODE)
        self.enclave.ecall("setup", record_bytes)
        self.publications_routed = 0

    @property
    def measurement(self):
        """The router enclave's measurement (for client pinning)."""
        return self.enclave.measurement

    def channel_offer(self, client_id):
        """Relay a key-exchange offer; quotes it via the platform QE."""
        offer = self.enclave.ecall("channel_offer", client_id)
        quote = self.platform.quoting_enclave.quote(offer["report"])
        return {"dh_public": offer["dh_public"], "quote": quote}

    def channel_accept(self, client_id, client_public):
        """Relay the client's DH value into the enclave."""
        return self.enclave.ecall("channel_accept", client_id, client_public)

    def subscribe(self, envelope):
        """Route a subscription envelope into the enclave."""
        return self.enclave.ecall("subscribe", envelope)

    def unsubscribe(self, client_id, subscription_id):
        """Remove a subscription on behalf of its owner."""
        return self.enclave.ecall("unsubscribe", client_id, subscription_id)

    def publish(self, envelope):
        """Route a publication; returns sealed notifications."""
        notifications = self.enclave.ecall("publish", envelope)
        self.publications_routed += 1
        return notifications

    def publish_routed(self, envelope):
        """Route a publication; returns (subscriber_id, envelope) pairs."""
        routed = self.enclave.ecall("publish_routed", envelope)
        self.publications_routed += 1
        return routed

    def publish_unbatched(self, envelope):
        """Seed fan-out path (per-subscription sealing); A10 baseline."""
        notifications = self.enclave.ecall("publish_unbatched", envelope)
        self.publications_routed += 1
        return notifications

    def stats(self):
        """Operational counters from inside the enclave."""
        return self.enclave.ecall("stats")

    def checkpoint(self):
        """Sealed blob of the subscription database (untrusted-safe)."""
        return self.enclave.ecall("checkpoint")

    def restore(self, blob, record_bytes=512):
        """Rebuild state from a sealed checkpoint; returns the count."""
        return self.enclave.ecall("restore", blob, record_bytes)


class ScbrClient:
    """A publisher/subscriber endpoint."""

    def __init__(self, client_id, router, attestation_service,
                 expected_measurement=None):
        from repro.scbr.keyexchange import RouterKeyExchange

        self.client_id = client_id
        self.router = router
        self.key = RouterKeyExchange(router, attestation_service).establish(
            client_id,
            expected_measurement=expected_measurement or router.measurement,
        )

    def subscribe(self, subscription):
        """Encrypt and submit a subscription."""
        envelope = EncryptedEnvelope.seal(
            self.key, self.client_id, "subscribe",
            serialize_subscription(subscription),
        )
        return self.router.subscribe(envelope)

    def publish(self, publication):
        """Encrypt and submit a publication."""
        envelope = EncryptedEnvelope.seal(
            self.key, self.client_id, "publish",
            serialize_publication(publication),
        )
        return self.router.publish(envelope)

    def unsubscribe(self, subscription_id):
        """Withdraw one of this client's subscriptions."""
        return self.router.unsubscribe(self.client_id, subscription_id)

    def open_notification(self, envelope):
        """Decrypt a notification addressed to this client."""
        publication, _subscription_ids = open_notification(envelope, self.key)
        return publication

    def open_notification_detail(self, envelope):
        """Decrypt a notification; returns (publication, matched ids).

        The ids are this client's subscriptions the publication
        matched -- the batched fan-out delivers them alongside the
        publication instead of sending one duplicate envelope each.
        """
        return open_notification(envelope, self.key)
