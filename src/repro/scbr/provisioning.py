"""Fleet-scale attestation and key provisioning for the matching plane.

Every shard join used to run a full RSA quote verification plus a
fresh Diffie-Hellman handshake inline -- fine for four shards, ruinous
for a fleet.  This module is the CAS-style provisioning plane (paper
Section V-A; BigDL's PPML attestation agent is the exemplar) that
makes enclave joins a cached, batched, amortized hot path:

- :class:`CachedAttestationVerifier` memoizes *successful* quote
  verifications keyed by ``(platform_id, measurement, sha256(payload +
  signature))``.  A hit skips only the expensive signature check; the
  cheap policy checks (platform registered, measurement trusted,
  report data bound) rerun on every hit, so revocation can never ride
  a stale verdict.  Revoking a measurement or deregistering a platform
  bumps the cache epoch -- every outstanding entry goes stale at once
  (fail closed) -- and flushes the matching entries.

- :func:`coord_enroll_batch` enrolls N join offers in one coordinator
  ECALL: one coordinator quote whose report data commits to a hash
  over *all* offered DH values (:func:`batch_join_commitment`), one
  DH transport key per shard, per-shard wrapped plane keys returned in
  a single round.  A host dropping, reordering, or substituting an
  offer changes the commitment and every shard aborts.

- Resumption tickets: at enrollment each shard platform earns a
  per-platform resumption secret, platform-sealed on the shard side
  (it dies with the machine's fuse secret) and bound into an
  epoch-stamped ticket sealed under the coordinator's ticket key.  A
  re-join presents the ticket and runs :func:`coord_resume` /
  :func:`shard_resume_offer` / :func:`shard_resume_complete` -- no RSA,
  no modular exponentiation -- falling back to the full handshake on
  epoch mismatch, revocation, or a foreign platform.

- Key rotation: :func:`coord_rotate` mints a new plane key and ticket
  key, bumps the plane epoch (invalidating every outstanding ticket),
  and returns per-shard rekey blobs wrapped under the *old* plane key,
  so live shards roll forward without a re-join.

All verification, signing, DH, and resume costs are charged in
*virtual cycles* (the ``*_CYCLES`` constants below), so the E8
benchmark measures the same cost model the rest of the reproduction
gates on.
"""

import json

from repro.errors import (
    AttestationError,
    ConfigurationError,
    IntegrityError,
)
from repro.crypto.aead import AeadKey, Ciphertext
from repro.crypto.dh import DhKeyPair
from repro.crypto.kdf import hkdf
from repro.crypto.primitives import sha256
from repro.scbr.keyexchange import dh_commitment
from repro.telemetry import default_registry

# --- the virtual cost model -------------------------------------------
#
# A quote verification stands in for the certificate-chain walk / IAS
# round a DCAP verifier performs -- by far the dominant cost of a cold
# join, which is exactly why CAS-style deployments cache it.  A cache
# hit pays a digest lookup plus the policy re-check.  DH costs model
# one 2048-bit modular exponentiation each; ticket resumption is pure
# symmetric crypto.

QUOTE_SIGN_CYCLES = 900_000
QUOTE_VERIFY_CYCLES = 8_000_000
QUOTE_CACHED_CYCLES = 6_000
DH_KEYGEN_CYCLES = 450_000
DH_SHARED_CYCLES = 450_000
TICKET_RESUME_CYCLES = 30_000

# Associated-data labels of the provisioning message kinds.
AAD_BATCH_JOIN = b"plane|join2|"
AAD_TICKET = b"plane|ticket"
AAD_RESUME = b"plane|resume|"
AAD_REKEY = b"plane|rekey|"


def _encode_int(value):
    """Minimal big-endian encoding; zero still encodes as one byte."""
    width = max((value.bit_length() + 7) // 8, 1)
    return value.to_bytes(width, "big")


def _frame(pieces):
    """Unambiguous length-prefixed concatenation."""
    return b"".join(
        len(piece).to_bytes(4, "big") + piece for piece in pieces
    )


def batch_join_commitment(coordinator_public, offers):
    """The report-data commitment over one whole enrollment batch.

    Binds the coordinator's DH value and every offered ``(shard_id,
    shard_public)`` pair, order-significant and length-prefixed: a host
    that drops, reorders, substitutes, or injects an offer changes the
    commitment, so the coordinator's quote no longer matches and every
    shard in the batch aborts its join.
    """
    pieces = [_encode_int(coordinator_public)]
    for shard_id, shard_public in offers:
        pieces.append(str(shard_id).encode("ascii"))
        pieces.append(_encode_int(shard_public))
    return sha256(b"scbr-batch-join|" + _frame(pieces))


def platform_fingerprint(platform):
    """Host-visible stable identity of a machine.

    ``platform_id`` is a process-local ordinal that changes when a
    seeded platform object is recreated; the quoting enclave's public
    key derives from the machine's provisioning seed and is what the
    attestation service actually pins.  Hashing it gives the host a
    durable index for per-machine state (sealed join keys, resumption
    tickets) without learning anything the registry does not publish.
    """
    key = platform.quoting_enclave.public_key
    return sha256(
        b"quoting-key|" + _frame(
            [_encode_int(key.modulus), _encode_int(key.exponent)]
        )
    ).hex()


class CachedAttestationVerifier:
    """An :class:`~repro.sgx.attestation.AttestationService` front that
    memoizes successful quote verifications.

    The cache key is ``(platform_id, measurement, sha256(signed_payload
    + signature))``.  The signature is hashed into the key on purpose
    -- one step beyond caching by payload alone -- so a forged
    signature over a previously verified payload can never ride a hit.
    Entries are epoch-bound: :meth:`revoke_measurement` and
    :meth:`deregister_platform` bump the epoch (staling *every*
    outstanding entry, fail closed) and flush the matching ones.  A hit
    still reruns the service's cheap policy checks, so revocations
    applied directly to the wrapped service -- behind this cache's back
    -- are honoured too.

    Only successes are cached; a failed verification raises and caches
    nothing.  ``enabled=False`` degrades to a pass-through that charges
    the full verification cost every time (the cold baseline).
    """

    def __init__(self, service, enabled=True):
        self.service = service
        self.enabled = enabled
        self.epoch = 1
        self._cache = {}
        self._revoked = set()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        registry = default_registry()
        self._tel_hits = registry.counter("provisioning.verify.hits")
        self._tel_misses = registry.counter("provisioning.verify.misses")
        self._tel_invalidations = registry.counter(
            "provisioning.verify.invalidations"
        )

    # -- registry delegation -------------------------------------------

    def register_platform(self, platform_id, public_key):
        self.service.register_platform(platform_id, public_key)

    def deregister_platform(self, platform_id):
        """Deregister and flush: quotes and hits from the platform die."""
        self.service.deregister_platform(platform_id)
        self._invalidate(
            lambda key: key[0] == platform_id
        )

    def trust_measurement(self, measurement):
        self._revoked.discard(measurement)
        self.service.trust_measurement(measurement)

    def revoke_measurement(self, measurement):
        """Revoke and flush: cached verdicts for the measurement die.

        The revocation is also remembered explicitly, so even paths
        that pin a measurement by expectation (``expected_measurement``
        bypasses the allowlist) -- plane enrollment, ticket resumption
        -- fail closed afterwards.
        """
        self.service.revoke_measurement(measurement)
        self._revoked.add(measurement)
        self._invalidate(
            lambda key: key[1] == measurement
        )

    def measurement_revoked(self, measurement):
        """Whether ``measurement`` has been explicitly revoked."""
        return measurement in self._revoked

    def platform_registered(self, platform_id):
        return self.service.platform_registered(platform_id)

    @property
    def trusted_measurements(self):
        return self.service.trusted_measurements

    def _invalidate(self, matches):
        flushed = [key for key in self._cache if matches(key)]
        for key in flushed:
            del self._cache[key]
        # The epoch bump stales every *other* entry too: after a
        # revocation event the whole cache re-earns its verdicts.
        self.epoch += 1
        self.invalidations += len(flushed)
        self._tel_invalidations.inc(len(flushed))

    # -- verification ---------------------------------------------------

    def _key(self, quote):
        return (
            quote.platform_id,
            quote.measurement,
            sha256(
                quote.signed_payload() + b"|" + _encode_int(quote.signature)
            ),
        )

    def verify(self, quote, expected_measurement=None,
               expected_report_data=None, compute=None):
        """Validate ``quote``; ``compute`` (optional callable) is
        charged the virtual verification cost -- the full
        :data:`QUOTE_VERIFY_CYCLES` on a miss, :data:`QUOTE_CACHED_CYCLES`
        on a hit."""
        if quote.measurement in self._revoked:
            raise AttestationError(
                "measurement %s... has been revoked" % quote.measurement[:16]
            )
        key = self._key(quote)
        if self.enabled and self._cache.get(key) == self.epoch:
            if compute is not None:
                compute(QUOTE_CACHED_CYCLES)
            # The signature was proven under this epoch; policy is
            # re-judged live so a revocation applied directly to the
            # wrapped service still fails closed.
            self.service.check_policy(
                quote,
                expected_measurement=expected_measurement,
                expected_report_data=expected_report_data,
            )
            self.hits += 1
            self._tel_hits.inc()
            return True
        if compute is not None:
            compute(QUOTE_VERIFY_CYCLES)
        self.service.verify(
            quote,
            expected_measurement=expected_measurement,
            expected_report_data=expected_report_data,
        )
        if self.enabled:
            self._cache[key] = self.epoch
        self.misses += 1
        self._tel_misses.inc()
        return True


def verify_quote(attestation, quote, compute=None, **kwargs):
    """Verify under whatever verifier the deployment wired in.

    ``None`` means trusting-driver mode (no verification, no cost); a
    :class:`CachedAttestationVerifier` prices hits and misses itself; a
    plain :class:`~repro.sgx.attestation.AttestationService` charges
    the full cost every time.
    """
    if attestation is None:
        return True
    if isinstance(attestation, CachedAttestationVerifier):
        return attestation.verify(quote, compute=compute, **kwargs)
    if compute is not None:
        compute(QUOTE_VERIFY_CYCLES)
    return attestation.verify(quote, **kwargs)


# --- shard-side ECALLs -------------------------------------------------
#
# Registered in repro.scbr.sharding's SHARD_ENTRY_POINTS; they share
# the shard enclave's state dict with the legacy join ECALLs.

_JOIN_KEY_REUSE_CYCLES = 2_000     # unseal + keypair reconstruction


def shard_join_offer2(ctx, sealed_join_key=None):
    """ECALL: start a join with an optionally platform-bound DH key.

    With ``sealed_join_key`` (a blob this *machine* sealed on an
    earlier join) the enclave unseals and reuses the join keypair, so
    its quote is byte-identical to the earlier one and the verifier's
    cache can hit; a blob sealed by a different machine or measurement
    fails to unseal and the enclave falls back to a fresh keypair.
    Returns the offer plus the (re)sealed join key for the host to
    store -- the host only ever holds ciphertext.
    """
    dh = None
    if sealed_join_key is not None:
        try:
            private = int.from_bytes(ctx.unseal(sealed_join_key), "big")
            ctx.compute(_JOIN_KEY_REUSE_CYCLES)
            dh = DhKeyPair(private)
        except IntegrityError:
            dh = None  # foreign machine or code: mint fresh below
    if dh is None:
        ctx.compute(DH_KEYGEN_CYCLES)
        dh = DhKeyPair.generate()
        sealed_join_key = ctx.seal(_encode_int(dh._private))
    ctx.state["join_dh"] = dh
    return {
        "dh_public": dh.public_value,
        "report": ctx.report(dh_commitment(dh.public_value)),
        "sealed_join_key": sealed_join_key,
    }


def shard_join_complete_batch(ctx, coordinator_public, quote, offers, grant):
    """ECALL: finish a batched join; unwraps this shard's grant.

    ``offers`` is the full batch roster the host relayed.  The shard
    recomputes the batch commitment itself, checks its *own* offer is
    in the roster, and verifies the coordinator's quote against the
    recomputed commitment -- so a host editing the roster (or replaying
    a quote from a different batch) fails every shard closed.

    The grant carries the plane key, the plane epoch, and this
    machine's resumption secret; the secret is platform-sealed and
    returned to the host, which can store but never open it.
    """
    dh = ctx.state.pop("join_dh", None)
    if dh is None:
        raise AttestationError("no pending plane join")
    roster = [(shard_id, public) for shard_id, public in offers]
    if (ctx.state["shard_id"], dh.public_value) not in roster:
        raise AttestationError("this shard's offer is not in the batch")
    attestation = ctx.state.get("attestation")
    if attestation is not None:
        verify_quote(
            attestation, quote, compute=ctx.compute,
            expected_measurement=ctx.state.get("coordinator_measurement"),
            expected_report_data=batch_join_commitment(
                coordinator_public, roster
            ),
        )
    ctx.compute(DH_SHARED_CYCLES)
    transport = AeadKey(
        dh.shared_key(coordinator_public, info=b"scbr-plane-join")
    )
    aad = AAD_BATCH_JOIN + str(ctx.state["shard_id"]).encode("ascii")
    try:
        payload = transport.decrypt(Ciphertext.from_bytes(grant), aad=aad)
    except IntegrityError as exc:
        raise IntegrityError("join grant failed authentication") from exc
    record = json.loads(payload.decode("utf-8"))
    ctx.state["plane_key"] = AeadKey(bytes.fromhex(record["plane_key"]))
    ctx.state["plane_epoch"] = record["epoch"]
    secret = bytes.fromhex(record["resume_secret"])
    ctx.state["resume_secret"] = secret
    return ctx.seal(secret)


def _resume_transport(secret, shard_nonce, coordinator_nonce, shard_id):
    return AeadKey(hkdf(
        secret,
        b"scbr-resume|" + _frame([
            str(shard_id).encode("ascii"), shard_nonce, coordinator_nonce,
        ]),
    ))


def shard_resume_offer(ctx, sealed_secret):
    """ECALL: start a ticket re-join from this machine.

    Unseals the platform-bound resumption secret -- a blob sealed by a
    different machine or measurement raises
    :class:`~repro.errors.IntegrityError`, which the host treats as
    "fall back to the full handshake".  No RSA, no modexp: the fresh
    nonce is all that leaves the enclave.
    """
    secret = ctx.unseal(sealed_secret)
    ctx.compute(TICKET_RESUME_CYCLES)
    nonce = AeadKey.generate().key_bytes
    ctx.state["resume_secret"] = secret
    ctx.state["resume_nonce"] = nonce
    return {"shard_id": ctx.state["shard_id"], "nonce": nonce}


def shard_resume_complete(ctx, coordinator_nonce, wrapped):
    """ECALL: finish a ticket re-join; installs the plane key."""
    secret = ctx.state.get("resume_secret")
    nonce = ctx.state.pop("resume_nonce", None)
    if secret is None or nonce is None:
        raise AttestationError("no pending plane resumption")
    ctx.compute(TICKET_RESUME_CYCLES)
    transport = _resume_transport(
        secret, nonce, coordinator_nonce, ctx.state["shard_id"]
    )
    aad = AAD_RESUME + str(ctx.state["shard_id"]).encode("ascii")
    try:
        payload = transport.decrypt(Ciphertext.from_bytes(wrapped), aad=aad)
    except IntegrityError as exc:
        raise IntegrityError("resume grant failed authentication") from exc
    record = json.loads(payload.decode("utf-8"))
    ctx.state["plane_key"] = AeadKey(bytes.fromhex(record["plane_key"]))
    ctx.state["plane_epoch"] = record["epoch"]
    return True


def shard_rekey(ctx, blob):
    """ECALL: roll to the next epoch's plane key.

    The new key arrives wrapped under the *current* plane key -- only a
    shard already inside the plane can unwrap it, so rotation needs no
    re-attestation for live members.
    """
    plane_key = ctx.state.get("plane_key")
    if plane_key is None:
        raise AttestationError("shard has not joined the plane")
    aad = AAD_REKEY + str(ctx.state["shard_id"]).encode("ascii")
    try:
        payload = plane_key.decrypt(Ciphertext.from_bytes(blob), aad=aad)
    except IntegrityError as exc:
        raise IntegrityError("rekey blob failed authentication") from exc
    record = json.loads(payload.decode("utf-8"))
    ctx.state["plane_key"] = AeadKey(bytes.fromhex(record["plane_key"]))
    ctx.state["plane_epoch"] = record["epoch"]
    return record["epoch"]


# --- coordinator-side ECALLs ------------------------------------------

def _mint_ticket(ctx, platform_id):
    """Seal an epoch-stamped resumption ticket for ``platform_id``.

    The per-platform secret is minted once and reused across that
    machine's enrollments within an epoch; the ticket itself is sealed
    under the coordinator's ticket key, so the host can store and
    present it but neither read nor forge it.
    """
    secret = ctx.state["resumption"].setdefault(
        platform_id, AeadKey.generate().key_bytes
    )
    payload = json.dumps({
        "platform": platform_id,
        "epoch": ctx.state["plane_epoch"],
        "secret": secret.hex(),
    }, sort_keys=True).encode("utf-8")
    ticket = ctx.state["ticket_key"].encrypt(
        payload, aad=AAD_TICKET
    ).to_bytes()
    return secret, ticket


def coord_enroll_batch(ctx, offers):
    """ECALL: enroll N join offers in one round.

    ``offers`` is a list of ``(shard_id, shard_public, quote)``.  Every
    shard quote is verified (cache-priced), then ONE coordinator DH
    value -- minted once per plane epoch and reused across batches --
    is quoted over the batch commitment, and each shard's grant (plane
    key + epoch + its machine's resumption secret) is wrapped under its
    own DH transport key.  Returns the roster, the grants, and a fresh
    resumption ticket per shard.
    """
    if not offers:
        raise ConfigurationError("an enrollment batch cannot be empty")
    attestation = ctx.state.get("attestation")
    roster = []
    platforms = {}
    for shard_id, shard_public, quote in offers:
        if attestation is not None:
            verify_quote(
                attestation, quote, compute=ctx.compute,
                expected_measurement=ctx.state.get("shard_measurement"),
                expected_report_data=dh_commitment(shard_public),
            )
        roster.append((shard_id, shard_public))
        platforms[shard_id] = (
            quote.platform_id if quote is not None else None
        )
    epoch = ctx.state["plane_epoch"]
    dh = ctx.state.get("epoch_join_dh")
    if dh is None or ctx.state.get("epoch_join_dh_epoch") != epoch:
        ctx.compute(DH_KEYGEN_CYCLES)
        dh = DhKeyPair.generate()
        ctx.state["epoch_join_dh"] = dh
        ctx.state["epoch_join_dh_epoch"] = epoch
    report = ctx.report(batch_join_commitment(dh.public_value, roster))
    plane_key_hex = ctx.state["plane_key"].key_bytes.hex()
    grants = {}
    tickets = {}
    for shard_id, shard_public in roster:
        platform_id = platforms[shard_id]
        secret, ticket = _mint_ticket(ctx, platform_id)
        ctx.compute(DH_SHARED_CYCLES)
        transport = AeadKey(
            dh.shared_key(shard_public, info=b"scbr-plane-join")
        )
        payload = json.dumps({
            "plane_key": plane_key_hex,
            "epoch": epoch,
            "resume_secret": secret.hex(),
        }, sort_keys=True).encode("utf-8")
        aad = AAD_BATCH_JOIN + str(shard_id).encode("ascii")
        grants[shard_id] = transport.encrypt(payload, aad=aad).to_bytes()
        tickets[shard_id] = ticket
        ctx.state.setdefault("enrolled", set()).add(shard_id)
        ctx.state.setdefault("shard_platform", {})[shard_id] = platform_id
    return {
        "dh_public": dh.public_value,
        "report": report,
        "offers": roster,
        "grants": grants,
        "tickets": tickets,
        "epoch": epoch,
    }


def coord_resume(ctx, shard_id, ticket, shard_nonce):
    """ECALL: admit a ticket re-join, skipping quote-verify and DH.

    Fails closed -- :class:`~repro.errors.AttestationError` -- when the
    ticket does not authenticate, names a stale epoch (rotation), names
    a deregistered platform, or the shard measurement has been revoked
    since the ticket was minted.  The host then falls back to the full
    attested handshake.
    """
    ctx.compute(TICKET_RESUME_CYCLES)
    try:
        payload = ctx.state["ticket_key"].decrypt(
            Ciphertext.from_bytes(ticket), aad=AAD_TICKET
        )
    except IntegrityError as exc:
        raise AttestationError("resumption ticket invalid") from exc
    record = json.loads(payload.decode("utf-8"))
    epoch = ctx.state["plane_epoch"]
    if record["epoch"] != epoch:
        raise AttestationError(
            "resumption ticket is for epoch %d, plane is at %d"
            % (record["epoch"], epoch)
        )
    attestation = ctx.state.get("attestation")
    if attestation is not None:
        measurement = ctx.state.get("shard_measurement")
        revoked = getattr(attestation, "measurement_revoked", None)
        if (measurement is not None and revoked is not None
                and revoked(measurement)):
            raise AttestationError(
                "shard measurement revoked; resumption refused"
            )
        platform_id = record["platform"]
        if platform_id is not None and not attestation.platform_registered(
            platform_id
        ):
            raise AttestationError(
                "platform %r deregistered; resumption refused" % platform_id
            )
    secret = bytes.fromhex(record["secret"])
    if ctx.state["resumption"].get(record["platform"]) != secret:
        raise AttestationError("resumption secret no longer current")
    coordinator_nonce = AeadKey.generate().key_bytes
    transport = _resume_transport(
        secret, shard_nonce, coordinator_nonce, shard_id
    )
    payload = json.dumps({
        "plane_key": ctx.state["plane_key"].key_bytes.hex(),
        "epoch": epoch,
    }, sort_keys=True).encode("utf-8")
    aad = AAD_RESUME + str(shard_id).encode("ascii")
    wrapped = transport.encrypt(payload, aad=aad).to_bytes()
    ctx.state.setdefault("enrolled", set()).add(shard_id)
    return {"nonce": coordinator_nonce, "wrapped": wrapped, "epoch": epoch}


def coord_rotate(ctx):
    """ECALL: roll the plane to a new key epoch.

    Mints a fresh plane key and ticket key, bumps the epoch, clears
    the per-platform resumption secrets (every outstanding ticket is
    now doubly dead: wrong epoch *and* sealed under the retired ticket
    key), and returns one rekey blob per enrolled shard -- the new key
    wrapped under the old plane key.  Refuses while a publication is
    parked: its match blobs were sealed under the old key.
    """
    if ctx.state.get("pending_publications"):
        raise ConfigurationError(
            "cannot rotate with publications in flight"
        )
    old_key = ctx.state["plane_key"]
    new_key = AeadKey.generate()
    epoch = ctx.state["plane_epoch"] + 1
    ctx.state["plane_key"] = new_key
    ctx.state["plane_epoch"] = epoch
    ctx.state["ticket_key"] = AeadKey.generate()
    ctx.state["resumption"] = {}
    ctx.state.pop("epoch_join_dh", None)
    ctx.state.pop("epoch_join_dh_epoch", None)
    rekey = {}
    tickets = {}
    shard_platform = ctx.state.get("shard_platform", {})
    for shard_id in sorted(ctx.state.get("enrolled", ())):
        payload = json.dumps({
            "plane_key": new_key.key_bytes.hex(),
            "epoch": epoch,
        }, sort_keys=True).encode("utf-8")
        aad = AAD_REKEY + str(shard_id).encode("ascii")
        rekey[shard_id] = old_key.encrypt(payload, aad=aad).to_bytes()
        platform_id = shard_platform.get(shard_id)
        if platform_id is not None:
            _secret, ticket = _mint_ticket(ctx, platform_id)
            tickets[shard_id] = ticket
    return {"epoch": epoch, "rekey": rekey, "tickets": tickets}


# --- the host-side provisioner ----------------------------------------

class PlaneProvisioner:
    """Untrusted driver of plane enrollment.

    Relays offers, quotes, grants, and tickets between the coordinator
    and shard enclaves -- it stores sealed blobs and presents tickets,
    but never sees key material.  Three independently-switchable
    amortizations:

    - ``reuse_join_keys``: shards reuse a platform-sealed join keypair,
      so a machine's re-join quote is byte-identical to its first --
      the verifier's cache (and the host's quote cache, which skips
      re-signing a deterministic signature) can hit;
    - ``batch``: all pending joins enroll through ONE
      :func:`coord_enroll_batch` round instead of per-shard ECALLs;
    - ``tickets``: machines holding a live resumption ticket re-join
      via the ticket path, skipping quote-verify and DH entirely, with
      automatic fallback to the full handshake when the ticket is
      stale, revoked, or lost (``chaos.loses_ticket``).
    """

    def __init__(self, attestation=None, reuse_join_keys=True, batch=True,
                 tickets=True, chaos=None):
        self.attestation = attestation
        self.reuse_join_keys = reuse_join_keys
        self.batch = batch
        self.tickets = tickets
        self.chaos = chaos
        self._join_keys = {}     # machine fingerprint -> sealed DH key
        self._quotes = {}        # (fingerprint, measurement, data) -> Quote
        self._resume = {}        # machine fingerprint -> (ticket, sealed R)
        self._resume_attempts = {}
        self.cold_joins = 0
        self.batched_joins = 0
        self.resumed_joins = 0
        self.batches = 0
        self.ticket_fallbacks = 0
        self.rotations = 0
        registry = default_registry()
        self._tel_cold = registry.counter("provisioning.joins.cold")
        self._tel_batched = registry.counter("provisioning.joins.batched")
        self._tel_resumed = registry.counter("provisioning.joins.resumed")
        self._tel_batches = registry.counter("provisioning.batches")
        self._tel_fallbacks = registry.counter(
            "provisioning.ticket_fallbacks"
        )
        self._tel_rotations = registry.counter("provisioning.rotations")

    # -- quoting --------------------------------------------------------

    def quote_for(self, platform, report):
        """Quote ``report`` on ``platform``, reusing identical quotes.

        The quoting enclave's FDH signature is deterministic, so the
        same (platform, measurement, report data) always yields the
        same quote -- caching it host-side skips only the redundant
        signing cost, never changes the bytes on the wire.  Keyed by
        ``platform_id`` (the live object), not fingerprint: a respawned
        platform earns a fresh id, and a cached quote naming its
        predecessor would misattribute (and break against a registry
        that deregistered the predecessor).
        """
        key = (
            platform.platform_id,
            report.measurement,
            bytes(report.report_data),
        )
        quote = self._quotes.get(key)
        if quote is None:
            platform.clock.charge(QUOTE_SIGN_CYCLES)
            quote = platform.quoting_enclave.quote(report)
            self._quotes[key] = quote
        return quote

    # -- enrollment -----------------------------------------------------

    def join(self, coordinator, coordinator_platform, entries):
        """Provision every ``(shard_id, platform, enclave)`` entry.

        Machines with a live ticket resume; the rest enroll through the
        batched (or, with ``batch=False``, per-shard) attested
        handshake.  A failed resumption -- stale epoch, revocation,
        foreign machine, chaos-lost ticket -- falls back to the full
        handshake for that entry, never fails the join.
        """
        pending = []
        for entry in entries:
            if not self._try_resume(coordinator, entry):
                pending.append(entry)
        if not pending:
            return
        if self.batch:
            self._enroll_batch(coordinator, coordinator_platform, pending)
            return
        for entry in pending:
            self._enroll_batch(
                coordinator, coordinator_platform, [entry], cold=True
            )

    def _offer_for(self, shard_id, platform, enclave):
        fingerprint = platform_fingerprint(platform)
        sealed = (
            self._join_keys.get(fingerprint)
            if self.reuse_join_keys else None
        )
        offer = enclave.ecall("join_offer2", sealed)
        if self.reuse_join_keys:
            self._join_keys[fingerprint] = offer["sealed_join_key"]
        quote = self.quote_for(platform, offer["report"])
        return (shard_id, offer["dh_public"], quote)

    def _enroll_batch(self, coordinator, coordinator_platform, entries,
                      cold=False):
        offers = [
            self._offer_for(shard_id, platform, enclave)
            for shard_id, platform, enclave in entries
        ]
        grant = coordinator.ecall("enroll_batch", offers)
        coordinator_quote = self.quote_for(
            coordinator_platform, grant["report"]
        )
        for shard_id, platform, enclave in entries:
            sealed_secret = enclave.ecall(
                "join_complete_batch", grant["dh_public"],
                coordinator_quote, grant["offers"],
                grant["grants"][shard_id],
            )
            self._store_ticket(
                platform, grant["tickets"][shard_id], sealed_secret
            )
        self.batches += 1
        self._tel_batches.inc()
        if cold:
            self.cold_joins += len(entries)
            self._tel_cold.inc(len(entries))
        else:
            self.batched_joins += len(entries)
            self._tel_batched.inc(len(entries))

    def _store_ticket(self, platform, ticket, sealed_secret):
        if self.tickets and ticket is not None:
            self._resume[platform_fingerprint(platform)] = (
                ticket, sealed_secret
            )

    def _try_resume(self, coordinator, entry):
        shard_id, platform, enclave = entry
        if not self.tickets:
            return False
        fingerprint = platform_fingerprint(platform)
        stored = self._resume.get(fingerprint)
        if stored is None:
            return False
        attempt = self._resume_attempts.get(fingerprint, 0)
        self._resume_attempts[fingerprint] = attempt + 1
        if self.chaos is not None and self.chaos.loses_ticket(
            fingerprint, attempt
        ):
            # The untrusted host lost (or dropped) the ticket; the
            # machine re-earns one through the full handshake.
            del self._resume[fingerprint]
            self.ticket_fallbacks += 1
            self._tel_fallbacks.inc()
            return False
        ticket, sealed_secret = stored
        try:
            offer = enclave.ecall("resume_offer", sealed_secret)
            answer = coordinator.ecall(
                "resume", shard_id, ticket, offer["nonce"]
            )
            enclave.ecall(
                "resume_complete", answer["nonce"], answer["wrapped"]
            )
        except (AttestationError, IntegrityError):
            # Stale epoch, revoked measurement, deregistered platform,
            # or a blob from a foreign machine: drop the dead ticket
            # and fall back to the full handshake.
            del self._resume[fingerprint]
            self.ticket_fallbacks += 1
            self._tel_fallbacks.inc()
            return False
        self.resumed_joins += 1
        self._tel_resumed.inc()
        return True

    # -- rotation -------------------------------------------------------

    def rotate(self, coordinator, shards):
        """Drive one key rotation across ``shards`` (ShardEnclave list).

        Every live shard rolls to the new plane key via its rekey blob;
        fresh tickets replace the invalidated ones.  Returns the new
        epoch.  The caller re-snapshots afterwards -- snapshots sealed
        under the old key cannot restore into the new epoch.
        """
        result = coordinator.ecall("rotate")
        for shard in shards:
            blob = result["rekey"].get(shard.shard_id)
            if blob is None:
                raise ConfigurationError(
                    "rotation produced no rekey blob for shard %r"
                    % shard.shard_id
                )
            shard.enclave.ecall("rekey", blob)
            ticket = result["tickets"].get(shard.shard_id)
            if ticket is not None and self.tickets:
                fingerprint = platform_fingerprint(shard.platform)
                stored = self._resume.get(fingerprint)
                if stored is not None:
                    self._resume[fingerprint] = (ticket, stored[1])
        self.rotations += 1
        self._tel_rotations.inc()
        return result["epoch"]
