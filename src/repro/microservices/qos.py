"""QoS monitoring, resource accounting, and billing.

The secure-container layer "monitors hardware usage to detect resource
bottlenecks and allows for accounting and billing" (Section III-B).
The monitor ingests per-event handling observations and heartbeats from
services and keeps rolling latency/throughput statistics per service;
the orchestrator consumes them; the billing report prices accumulated
usage.
"""

from dataclasses import dataclass, field

from repro.telemetry import DEFAULT_SECONDS_BUCKETS, default_registry


@dataclass
class ServiceMetrics:
    """Rolling QoS state for one service."""

    name: str
    events_handled: int = 0
    busy_seconds: float = 0.0
    last_heartbeat: float = 0.0
    recent_latencies: list = field(default_factory=list)
    window: int = 50

    def observe(self, latency, now):
        self.events_handled += 1
        self.busy_seconds += latency
        self.last_heartbeat = now
        self.recent_latencies.append(latency)
        if len(self.recent_latencies) > self.window:
            del self.recent_latencies[0]

    def average_latency(self):
        """Mean handling latency over the rolling window."""
        if not self.recent_latencies:
            return 0.0
        return sum(self.recent_latencies) / len(self.recent_latencies)


class QosMonitor:
    """Aggregates observations from all services of an application."""

    def __init__(self, env):
        self.env = env
        self.metrics = {}
        # ServiceMetrics stays the functional store (billing and the
        # orchestrator read it); the registry mirrors the counts so an
        # enabled-telemetry run sees per-service QoS without touching
        # the billing path.
        self._registry = default_registry()
        self._tel_latency = self._registry.histogram(
            "qos.handling_latency_seconds", buckets=DEFAULT_SECONDS_BUCKETS
        )
        self._tel_heartbeats = self._registry.counter("qos.heartbeats")

    def attach(self, service):
        """Start observing a service."""
        state = self.metrics.setdefault(
            service.name, ServiceMetrics(service.name)
        )
        state.last_heartbeat = self.env.now
        service.add_observer(self._observe)
        return state

    def _observe(self, service, _event, latency):
        state = self.metrics[service.name]
        state.observe(latency, self.env.now)
        self._registry.counter(
            "qos.events_handled", service=service.name
        ).inc()
        self._tel_latency.observe(latency)

    def heartbeat(self, service_name):
        """Explicit liveness signal (services emit these periodically)."""
        state = self.metrics.get(service_name)
        if state is not None:
            state.last_heartbeat = self.env.now
            self._tel_heartbeats.inc()

    def of(self, service_name):
        """Metrics for one service."""
        return self.metrics[service_name]

    def billing_report(self, cpu_second_price=0.00005):
        """Price the accumulated busy time per service."""
        lines = {
            name: state.busy_seconds * cpu_second_price
            for name, state in self.metrics.items()
        }
        return BillingReport(lines=lines, total=sum(lines.values()))


@dataclass(frozen=True)
class BillingReport:
    """What the tenant owes, per service and in total."""

    lines: dict
    total: float
