"""The event bus connecting micro-services.

Topic-based publish/subscribe over the discrete-event kernel: messages
are delivered to all subscribers after a configurable network latency,
with per-topic FIFO ordering (two publications to the same topic arrive
at every subscriber in publication order).

The bus itself is *untrusted infrastructure*: what travels on it are
:class:`SealedEvent` objects -- AEAD ciphertexts under per-topic keys
that only the enclaves of authorised services hold (delivered via their
SCFs).  The bus can reorder-attack, tamper, or snoop; the enclave-side
``open`` calls detect everything but message dropping, which surfaces
as sequence gaps.

Detection alone aborts the consumer; recovery needs a redelivery path.
:class:`ReliableEventBus` retains recently published sealed events, and
:class:`ReliableSubscriber` turns gap detection into NACKs against that
retained window: out-of-order arrivals are buffered, missing sequences
are re-requested (bounded attempts, re-checked on a virtual-time
timer), and the application handler sees every event exactly once, in
order.  Retention holds only ciphertext, so a compromised bus learns
nothing new from the redelivery buffer.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import Ciphertext
from repro.telemetry import DEFAULT_SECONDS_BUCKETS, default_registry


class SealedEvent:
    """An encrypted event on the bus."""

    def __init__(self, topic, sender, sequence, blob):
        self.topic = topic
        self.sender = sender
        self.sequence = sequence
        self.blob = blob

    @staticmethod
    def _aad(topic, sender, sequence):
        return ("bus|%s|%s|%d" % (topic, sender, sequence)).encode("utf-8")

    @classmethod
    def seal(cls, key, topic, sender, sequence, plaintext):
        """Encrypt ``plaintext`` as event ``sequence`` on ``topic``."""
        blob = key.encrypt(
            plaintext, aad=cls._aad(topic, sender, sequence)
        ).to_bytes()
        return cls(topic, sender, sequence, blob)

    def open(self, key):
        """Decrypt; raises if topic, sender, or sequence was altered."""
        try:
            return key.decrypt(
                Ciphertext.from_bytes(self.blob),
                aad=self._aad(self.topic, self.sender, self.sequence),
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "event %d on %r from %r failed authentication"
                % (self.sequence, self.topic, self.sender)
            ) from exc


class SequenceTracker:
    """Consumer-side gap detection for a topic.

    The bus cannot forge or reorder sealed events (the AEAD binds the
    sequence number), but a hostile broker *can* silently drop them.
    Tracking the per-topic sequence makes drops visible: feed every
    received event and read :attr:`missing`.
    """

    def __init__(self, topic):
        self.topic = topic
        self._expected = 0
        self.missing = []
        self.received = 0

    def observe(self, event):
        """Record one received event; returns newly detected gaps."""
        if event.topic != self.topic:
            raise IntegrityError(
                "tracker for %r fed an event on %r" % (self.topic, event.topic)
            )
        gaps = []
        if event.sequence > self._expected:
            gaps = list(range(self._expected, event.sequence))
            self.missing.extend(gaps)
        elif event.sequence < self._expected:
            raise IntegrityError(
                "sequence %d replayed or reordered on %r"
                % (event.sequence, self.topic)
            )
        self._expected = event.sequence + 1
        self.received += 1
        return gaps


class LossyBus:
    """Test double: wraps an :class:`EventBus` and drops chosen events.

    Models a malicious or faulty broker; used by the reliability tests
    to show consumers detect (not silently survive) message loss.
    """

    def __init__(self, bus, drop_sequences=(), drop_topic=None):
        self.bus = bus
        self.drop_sequences = set(drop_sequences)
        self.drop_topic = drop_topic
        self.dropped = 0

    def __getattr__(self, name):
        return getattr(self.bus, name)

    def publish(self, event):
        if event.sequence in self.drop_sequences and (
            self.drop_topic is None or event.topic == self.drop_topic
        ):
            self.dropped += 1
            return None
        return self.bus.publish(event)


class EventBus:
    """Topic pub/sub with virtual latency and FIFO per topic."""

    def __init__(self, env, latency=0.0005):
        self.env = env
        self.latency = latency
        self._subscribers = {}
        self._sequences = {}
        # The plain attributes stay: tests and benchmark reports read
        # them, and the default registry is a no-op.  The registry
        # handles mirror them for enabled-telemetry runs.
        self.delivered = 0
        self.published = 0
        registry = default_registry()
        self._tel_published = registry.counter("bus.published")
        self._tel_delivered = registry.counter("bus.delivered")

    def subscribe(self, topic, handler):
        """Register ``handler(event)`` for ``topic``; returns unsubscribe."""
        handlers = self._subscribers.setdefault(topic, [])
        handlers.append(handler)

        def unsubscribe():
            handlers.remove(handler)

        return unsubscribe

    def next_sequence(self, topic):
        """Allocate the next per-topic sequence number."""
        sequence = self._sequences.get(topic, 0)
        self._sequences[topic] = sequence + 1
        return sequence

    def publish(self, event):
        """Queue ``event`` for delivery after the bus latency."""
        self.published += 1
        self._tel_published.inc()
        handlers = list(self._subscribers.get(event.topic, ()))
        timeout = self.env.timeout(self.latency, value=event)

        def deliver(fired):
            for handler in handlers:
                self.delivered += 1
                self._tel_delivered.inc()
                handler(fired.value)

        timeout.callbacks.append(deliver)
        return timeout

    def publish_many(self, events):
        """Queue a burst of events behind one shared latency timer.

        A high-rate publisher flushing a batch pays one kernel timeout
        for the whole burst instead of one per event; delivery order
        follows the list order, so per-topic FIFO is preserved.  The
        subscriber snapshot is taken at publish time, exactly as in
        :meth:`publish`.
        """
        events = list(events)
        self.published += len(events)
        self._tel_published.inc(len(events))
        plan = [
            (event, list(self._subscribers.get(event.topic, ())))
            for event in events
        ]
        timeout = self.env.timeout(self.latency, value=events)

        def deliver(_fired):
            for event, handlers in plan:
                for handler in handlers:
                    self.delivered += 1
                    self._tel_delivered.inc()
                    handler(event)

        timeout.callbacks.append(deliver)
        return timeout

    def topics(self):
        """Topics with at least one subscriber."""
        return sorted(self._subscribers)


class ReliableEventBus(EventBus):
    """An event bus retaining sealed events for NACK-based redelivery.

    Publishers behave exactly as on :class:`EventBus`; additionally the
    bus keeps the last ``retention`` sealed events per topic so a
    consumer that detects a sequence gap can request redelivery.  The
    retained window is ciphertext only -- the bus still cannot read,
    forge, or reorder anything undetected.
    """

    def __init__(self, env, latency=0.0005, retention=1024):
        if retention < 1:
            raise ConfigurationError("retention must be >= 1")
        super().__init__(env, latency=latency)
        self.retention = retention
        self._retained = {}
        self.redelivered = 0
        self._tel_redelivered = default_registry().counter("bus.redelivered")

    def _retain(self, event):
        window = self._retained.setdefault(event.topic, OrderedDict())
        window[event.sequence] = event
        while len(window) > self.retention:
            window.popitem(last=False)

    def publish(self, event):
        self._retain(event)
        return super().publish(event)

    def publish_many(self, events):
        events = list(events)
        for event in events:
            self._retain(event)
        return super().publish_many(events)

    def retained_sequences(self, topic):
        """Sequences currently redeliverable for ``topic``."""
        return list(self._retained.get(topic, ()))

    def redeliver(self, topic, sequences, handler=None):
        """Redeliver retained events after the bus latency.

        ``handler`` targets one consumer (the NACK issuer); without it
        every subscriber of the topic receives the redelivery.  Returns
        the sequences actually found in the retained window -- a
        sequence that has aged out is permanently lost and the caller
        must surface it.
        """
        window = self._retained.get(topic, {})
        found = []
        for sequence in sequences:
            event = window.get(sequence)
            if event is None:
                continue
            found.append(sequence)
            self.redelivered += 1
            self._tel_redelivered.inc()
            targets = (
                [handler] if handler is not None
                else list(self._subscribers.get(topic, ()))
            )
            timeout = self.env.timeout(self.latency, value=event)

            def deliver(fired, targets=targets):
                for target in targets:
                    self.delivered += 1
                    target(fired.value)

            timeout.callbacks.append(deliver)
        return found


class ReliableSubscriber:
    """Exactly-once, in-order consumption over a lossy bus.

    Wraps a handler: arrivals ahead of the expected sequence are
    buffered, detected gaps are NACKed against the bus's retained
    window, and duplicates (redelivery races, hostile duplication) are
    discarded.  Each missing sequence is re-requested on a virtual-time
    timer up to ``max_nacks`` times, after which it is recorded in
    :attr:`lost` -- loss becomes an explicit, bounded outcome instead
    of a silent gap or an unbounded wait.

    ``orchestrator`` (optional) receives ``report_anomaly(topic,
    "gap")`` on first detection of each gap, wiring bus-level faults
    into the same reaction plane as service anomalies.
    """

    def __init__(self, bus, topic, handler, max_nacks=8, nack_timeout=None,
                 orchestrator=None):
        self.bus = bus
        self.topic = topic
        self.handler = handler
        self.max_nacks = max_nacks
        self.nack_timeout = (
            nack_timeout if nack_timeout is not None else bus.latency * 4
        )
        self.orchestrator = orchestrator
        self._expected = 0
        self._pending = {}
        self._nack_counts = {}
        self._gap_detected_at = {}
        self.delivered = 0
        self.duplicates = 0
        self.nacks = 0
        self.lost = []
        self._lost_set = set()
        self.recovery_latencies = []
        registry = default_registry()
        self._tel_delivered = registry.counter(
            "bus.subscriber.delivered", topic=topic
        )
        self._tel_duplicates = registry.counter(
            "bus.subscriber.duplicates", topic=topic
        )
        self._tel_nacks = registry.counter("bus.subscriber.nacks", topic=topic)
        self._tel_lost = registry.counter("bus.subscriber.lost", topic=topic)
        self._tel_recovery = registry.histogram(
            "bus.gap_recovery_seconds", buckets=DEFAULT_SECONDS_BUCKETS
        )
        bus.subscribe(topic, self.observe)

    def observe(self, event):
        """Feed one received sealed event (the bus calls this)."""
        if event.topic != self.topic:
            raise IntegrityError(
                "subscriber for %r fed an event on %r"
                % (self.topic, event.topic)
            )
        sequence = event.sequence
        if sequence < self._expected or sequence in self._pending:
            self.duplicates += 1
            self._tel_duplicates.inc()
            return
        self._pending[sequence] = event
        self._drain()
        for missing in self._missing_sequences():
            if missing not in self._nack_counts:
                self._gap_detected_at[missing] = self.bus.env.now
                if self.orchestrator is not None:
                    self.orchestrator.report_anomaly(self.topic, "gap")
                self._nack(missing)

    def _missing_sequences(self):
        if not self._pending:
            return []
        horizon = max(self._pending)
        return [
            sequence for sequence in range(self._expected, horizon)
            if sequence not in self._pending
        ]

    def _drain(self):
        while True:
            if self._expected in self._pending:
                event = self._pending.pop(self._expected)
                detected = self._gap_detected_at.pop(self._expected, None)
                if detected is not None:
                    self.recovery_latencies.append(self.bus.env.now - detected)
                    self._tel_recovery.observe(self.bus.env.now - detected)
                self._nack_counts.pop(self._expected, None)
                self._expected += 1
                self.delivered += 1
                self._tel_delivered.inc()
                self.handler(event)
            elif self._expected in self._lost_set:
                # A hole we already gave up on: step over it so later
                # buffered events still reach the handler in order.
                self._expected += 1
            else:
                return

    def _nack(self, sequence):
        attempts = self._nack_counts.get(sequence, 0)
        if attempts >= self.max_nacks:
            if sequence not in self._lost_set:
                # Give up: record the loss explicitly and release
                # in-order delivery past the hole.
                self.lost.append(sequence)
                self._lost_set.add(sequence)
                self._tel_lost.inc()
                self._gap_detected_at.pop(sequence, None)
                self._drain()
            return
        self._nack_counts[sequence] = attempts + 1
        self.nacks += 1
        self._tel_nacks.inc()
        self.bus.redeliver(self.topic, [sequence], handler=self.observe)
        self.bus.env.call_later(
            self.nack_timeout, lambda: self._recheck(sequence)
        )

    def _recheck(self, sequence):
        if sequence < self._expected or sequence in self._pending:
            return  # recovered in the meantime
        self._nack(sequence)
