"""The event bus connecting micro-services.

Topic-based publish/subscribe over the discrete-event kernel: messages
are delivered to all subscribers after a configurable network latency,
with per-topic FIFO ordering (two publications to the same topic arrive
at every subscriber in publication order).

The bus itself is *untrusted infrastructure*: what travels on it are
:class:`SealedEvent` objects -- AEAD ciphertexts under per-topic keys
that only the enclaves of authorised services hold (delivered via their
SCFs).  The bus can reorder-attack, tamper, or snoop; the enclave-side
``open`` calls detect everything but message dropping, which surfaces
as sequence gaps.
"""

from repro.errors import IntegrityError
from repro.crypto.aead import Ciphertext


class SealedEvent:
    """An encrypted event on the bus."""

    def __init__(self, topic, sender, sequence, blob):
        self.topic = topic
        self.sender = sender
        self.sequence = sequence
        self.blob = blob

    @staticmethod
    def _aad(topic, sender, sequence):
        return ("bus|%s|%s|%d" % (topic, sender, sequence)).encode("utf-8")

    @classmethod
    def seal(cls, key, topic, sender, sequence, plaintext):
        """Encrypt ``plaintext`` as event ``sequence`` on ``topic``."""
        blob = key.encrypt(
            plaintext, aad=cls._aad(topic, sender, sequence)
        ).to_bytes()
        return cls(topic, sender, sequence, blob)

    def open(self, key):
        """Decrypt; raises if topic, sender, or sequence was altered."""
        try:
            return key.decrypt(
                Ciphertext.from_bytes(self.blob),
                aad=self._aad(self.topic, self.sender, self.sequence),
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "event %d on %r from %r failed authentication"
                % (self.sequence, self.topic, self.sender)
            ) from exc


class SequenceTracker:
    """Consumer-side gap detection for a topic.

    The bus cannot forge or reorder sealed events (the AEAD binds the
    sequence number), but a hostile broker *can* silently drop them.
    Tracking the per-topic sequence makes drops visible: feed every
    received event and read :attr:`missing`.
    """

    def __init__(self, topic):
        self.topic = topic
        self._expected = 0
        self.missing = []
        self.received = 0

    def observe(self, event):
        """Record one received event; returns newly detected gaps."""
        if event.topic != self.topic:
            raise IntegrityError(
                "tracker for %r fed an event on %r" % (self.topic, event.topic)
            )
        gaps = []
        if event.sequence > self._expected:
            gaps = list(range(self._expected, event.sequence))
            self.missing.extend(gaps)
        elif event.sequence < self._expected:
            raise IntegrityError(
                "sequence %d replayed or reordered on %r"
                % (event.sequence, self.topic)
            )
        self._expected = event.sequence + 1
        self.received += 1
        return gaps


class LossyBus:
    """Test double: wraps an :class:`EventBus` and drops chosen events.

    Models a malicious or faulty broker; used by the reliability tests
    to show consumers detect (not silently survive) message loss.
    """

    def __init__(self, bus, drop_sequences=(), drop_topic=None):
        self.bus = bus
        self.drop_sequences = set(drop_sequences)
        self.drop_topic = drop_topic
        self.dropped = 0

    def __getattr__(self, name):
        return getattr(self.bus, name)

    def publish(self, event):
        if event.sequence in self.drop_sequences and (
            self.drop_topic is None or event.topic == self.drop_topic
        ):
            self.dropped += 1
            return None
        return self.bus.publish(event)


class EventBus:
    """Topic pub/sub with virtual latency and FIFO per topic."""

    def __init__(self, env, latency=0.0005):
        self.env = env
        self.latency = latency
        self._subscribers = {}
        self._sequences = {}
        self.delivered = 0
        self.published = 0

    def subscribe(self, topic, handler):
        """Register ``handler(event)`` for ``topic``; returns unsubscribe."""
        handlers = self._subscribers.setdefault(topic, [])
        handlers.append(handler)

        def unsubscribe():
            handlers.remove(handler)

        return unsubscribe

    def next_sequence(self, topic):
        """Allocate the next per-topic sequence number."""
        sequence = self._sequences.get(topic, 0)
        self._sequences[topic] = sequence + 1
        return sequence

    def publish(self, event):
        """Queue ``event`` for delivery after the bus latency."""
        self.published += 1
        handlers = list(self._subscribers.get(event.topic, ()))
        timeout = self.env.timeout(self.latency, value=event)

        def deliver(fired):
            for handler in handlers:
                self.delivered += 1
                handler(fired.value)

        timeout.callbacks.append(deliver)
        return timeout

    def topics(self):
        """Topics with at least one subscriber."""
        return sorted(self._subscribers)
