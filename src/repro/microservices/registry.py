"""Service discovery with measurement pinning.

Services register their name, topics, and enclave measurement; lookups
verify the measurement against what the deployer pinned, so a swapped
binary cannot silently take over a service name.
"""

from repro.errors import AttestationError, ConfigurationError


class ServiceRegistry:
    """Name -> (service, pinned measurement) directory."""

    def __init__(self):
        self._entries = {}
        self._pins = {}

    def pin(self, name, measurement):
        """Declare the only measurement allowed to serve ``name``."""
        self._pins[name] = measurement

    def register(self, service):
        """Register a service; verifies any pin for its name."""
        pinned = self._pins.get(service.name)
        if pinned is not None and service.measurement != pinned:
            raise AttestationError(
                "service %r measurement %s... does not match pinned %s..."
                % (service.name, service.measurement[:12], pinned[:12])
            )
        self._entries[service.name] = service
        return service

    def lookup(self, name):
        """Find a registered service."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError("no service %r registered" % name) from None

    def names(self):
        """Registered service names."""
        return sorted(self._entries)

    def deregister(self, name):
        """Remove a service (e.g. after a crash)."""
        self._entries.pop(name, None)
