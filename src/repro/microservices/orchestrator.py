"""The orchestrator: millisecond anomaly detection and reaction.

Paper Section VI (use case 2): "Orchestration services detect anomalies
within milliseconds, which requires adaptations to the virtual
infrastructure that hosts the application."

The orchestrator samples the QoS monitor on a fine period (default
0.5 ms of virtual time) and fires policy reactions when it sees:

- **latency anomaly**: a service's rolling average exceeds its SLO;
- **liveness anomaly**: a service missed its heartbeat deadline.

Reactions are pluggable; the built-ins restore the service's normal
speed (modelling a CPU-quota adjustment / migration away from a noisy
neighbour) and recover crashed services.  Every detection is recorded
with its virtual-time latency from anomaly onset, which is what the E4
benchmark reports.
"""

from dataclasses import dataclass
from typing import Optional

from repro.telemetry import DEFAULT_SECONDS_BUCKETS, default_registry


@dataclass
class OrchestratorPolicy:
    """Thresholds and sampling cadence."""

    sample_period: float = 0.0005        # 0.5 ms
    latency_slo: float = 0.005           # 5 ms rolling average
    heartbeat_timeout: float = 0.020     # 20 ms without a sign of life
    min_observations: int = 3
    reaction_cooldown: float = 0.050     # grace period after a reaction


@dataclass
class Detection:
    """One anomaly detection record."""

    service_name: str
    kind: str              # "latency" | "liveness" | externally reported
    detected_at: float
    onset: Optional[float] = None

    @property
    def detection_latency(self):
        """Seconds from (externally recorded) onset to detection."""
        if self.onset is None:
            return None
        return self.detected_at - self.onset


@dataclass
class RecoveryEpisode:
    """One detection-to-recovery episode reported by a subsystem.

    ``recovery_seconds`` is the virtual time the healing work itself
    took (respawn, re-attestation, state reload, replay), as measured
    by the reporting subsystem on whatever clock its work is charged
    to; ``detected_at``/``onset`` are on the orchestrator's simulated
    clock, mirroring :class:`Detection`.
    """

    service_name: str
    kind: str
    detected_at: float
    recovery_seconds: float
    onset: Optional[float] = None

    @property
    def detection_latency(self):
        """Seconds from (externally recorded) onset to detection."""
        if self.onset is None:
            return None
        return self.detected_at - self.onset


class Orchestrator:
    """Samples QoS state and adapts the application."""

    def __init__(self, env, monitor, registry, policy=None,
                 on_detection=None):
        """``on_detection(detection, service_or_none)`` is invoked after
        the built-in reaction, letting deployments add adaptations --
        spawn a replica, migrate a container, page an operator."""
        self.env = env
        self.monitor = monitor
        self.registry = registry
        self.policy = policy or OrchestratorPolicy()
        self.on_detection = on_detection
        # The lists and the reactions count remain the functional
        # record (benchmarks and tests read them; the default registry
        # is a no-op) -- the metrics registry mirrors them.  Note
        # ``registry`` here is the *service* registry; the metrics
        # registry is the process default.
        self.detections = []
        self.recoveries = []
        self.reactions = 0
        self._metrics = default_registry()
        self._tel_reactions = self._metrics.counter("orchestrator.reactions")
        self._tel_recoveries = self._metrics.counter(
            "orchestrator.recovery_episodes"
        )
        self._tel_detection_latency = self._metrics.histogram(
            "orchestrator.detection_latency_seconds",
            buckets=DEFAULT_SECONDS_BUCKETS,
        )
        self._tel_recovery_seconds = self._metrics.histogram(
            "orchestrator.recovery_seconds", buckets=DEFAULT_SECONDS_BUCKETS
        )
        self._onsets = {}
        self._flagged = set()
        self._cooldown_until = {}
        self._running = False

    def record_onset(self, service_name, time=None):
        """Tests/benchmarks call this when they inject an anomaly."""
        self._onsets[service_name] = time if time is not None else self.env.now

    def report_anomaly(self, name, kind, onset=None):
        """External subsystems report an anomaly they detected themselves.

        The recovery plane is wider than the QoS sampler: bus gap
        watchers, replicated brokers, and data-plane drivers detect
        their own failures.  Reporting routes those through the same
        detection record / reaction / ``on_detection`` pipeline, so one
        log carries every detection-to-recovery episode.
        """
        if onset is not None:
            self._onsets[name] = onset
        self._detect(name, kind, self.env.now)

    def report_recovery(self, name, kind, recovery_seconds,
                        detected_at=None, onset=None):
        """Record a completed detection-to-recovery episode.

        Self-healing subsystems (broker failover, shard respawn) call
        this once the replacement is serving again, so a single log
        carries every episode's onset, detection time, and how long the
        healing work took in virtual time.
        """
        episode = RecoveryEpisode(
            service_name=name,
            kind=kind,
            detected_at=(
                detected_at if detected_at is not None else self.env.now
            ),
            recovery_seconds=recovery_seconds,
            onset=onset if onset is not None else self._onsets.get(name),
        )
        self.recoveries.append(episode)
        self._tel_recoveries.inc()
        self._tel_recovery_seconds.observe(recovery_seconds)
        return episode

    def start(self, duration):
        """Run the sampling loop for ``duration`` of virtual time."""
        self._running = True
        return self.env.process(self._loop(duration))

    def stop(self):
        """Stop sampling at the next period boundary."""
        self._running = False

    def _loop(self, duration):
        deadline = self.env.now + duration
        while self._running and self.env.now < deadline:
            yield self.env.timeout(self.policy.sample_period)
            self._sample()

    def _sample(self):
        policy = self.policy
        now = self.env.now
        for name, state in self.monitor.metrics.items():
            if name in self._flagged:
                continue
            if now < self._cooldown_until.get(name, 0.0):
                continue
            if (
                state.events_handled >= policy.min_observations
                and state.average_latency() > policy.latency_slo
            ):
                self._detect(name, "latency", now)
            elif now - state.last_heartbeat > policy.heartbeat_timeout:
                self._detect(name, "liveness", now)

    def _detect(self, service_name, kind, now):
        detection = Detection(
            service_name=service_name,
            kind=kind,
            detected_at=now,
            onset=self._onsets.get(service_name),
        )
        self.detections.append(detection)
        self._metrics.counter("orchestrator.detections", kind=kind).inc()
        if detection.detection_latency is not None:
            self._tel_detection_latency.observe(detection.detection_latency)
        self._flagged.add(service_name)
        self._react(service_name, kind)
        if self.on_detection is not None:
            try:
                service = self.registry.lookup(service_name)
            except Exception:
                service = None
            self.on_detection(detection, service)

    def _react(self, service_name, kind):
        """Adapt the infrastructure hosting the service."""
        self.reactions += 1
        self._tel_reactions.inc()
        try:
            service = self.registry.lookup(service_name)
        except Exception:
            # Non-service anomalies (bus topics, brokers) have no
            # registry entry; unflag so the name can be detected again.
            self._flagged.discard(service_name)
            self._cooldown_until[service_name] = (
                self.env.now + self.policy.reaction_cooldown
            )
            return
        if kind == "latency":
            # Model a CPU-quota bump / migration off the contended host.
            service.slowdown = 1.0
        else:
            service.recover()
        # Clear rolling state so recovery is observable.
        state = self.monitor.metrics.get(service_name)
        if state is not None:
            state.recent_latencies.clear()
            state.last_heartbeat = self.env.now
        self._flagged.discard(service_name)
        self._cooldown_until[service_name] = (
            self.env.now + self.policy.reaction_cooldown
        )

    def detection_latencies(self):
        """Seconds from onset to detection, for recorded onsets."""
        return [
            detection.detection_latency
            for detection in self.detections
            if detection.detection_latency is not None
        ]

    def recovery_latencies(self):
        """Virtual seconds each reported recovery episode took to heal."""
        return [episode.recovery_seconds for episode in self.recoveries]
