"""The micro-service frame.

Figure 1: "the application logic of each micro-service lives within an
enclave; the micro-service runtime exists outside of the enclave; these
runtime functions only access encrypted data."

A :class:`MicroService` subscribes to bus topics.  The *runtime*
(outside) receives :class:`SealedEvent` objects and hands them, still
sealed, into the enclave; the *logic* (an in-enclave handler) opens
them with the topic key from enclave state, processes the plaintext,
and returns sealed output events, which the runtime publishes.  At no
point does plaintext exist outside the enclave.
"""

from repro.errors import ConfigurationError
from repro.microservices.eventbus import SealedEvent
from repro.sgx.enclave import EnclaveCode


def _enclave_install_keys(ctx, topic_keys):
    """ECALL (provisioning path): install per-topic AEAD keys."""
    ctx.state["topic_keys"] = dict(topic_keys)
    ctx.state["handled"] = 0
    return True


def _enclave_handle(ctx, handler, service_name, event, bus_sequences):
    """ECALL: open a sealed event, run logic, seal the outputs.

    ``bus_sequences`` is a callable the runtime provides to allocate
    output sequence numbers; it sees only topic names.
    """
    keys = ctx.state.get("topic_keys")
    if keys is None or event.topic not in keys:
        raise ConfigurationError(
            "service has no key for topic %r" % event.topic
        )
    plaintext = event.open(keys[event.topic])
    ctx.state["handled"] += 1
    outputs = handler(ctx, event.topic, plaintext)
    sealed = []
    for topic, payload in outputs or ():
        key = keys.get(topic)
        if key is None:
            raise ConfigurationError(
                "service has no key for output topic %r" % topic
            )
        sequence = ctx.ocall(bus_sequences, topic)
        sealed.append(
            SealedEvent.seal(key, topic, service_name, sequence, payload)
        )
    return sealed


def _enclave_stats(ctx):
    """ECALL: counters only, no payloads."""
    return {"handled": ctx.state.get("handled", 0)}


SERVICE_ENTRY_POINTS = {
    "install_keys": _enclave_install_keys,
    "handle": _enclave_handle,
    "stats": _enclave_stats,
}


class MicroService:
    """One service: enclave logic + untrusted runtime glue."""

    def __init__(self, name, platform, bus, handlers, topic_keys,
                 processing_time=0.001, enclave=None):
        """``handlers`` maps input topic -> in-enclave handler function
        ``handler(ctx, topic, plaintext) -> [(topic, payload), ...]``;
        ``topic_keys`` maps every topic the service touches to its AEAD
        key (in deployment these arrive via the SCF).

        Pass ``enclave`` to wrap an already-booted enclave (e.g. one
        started by the container engine after attestation) instead of
        loading a fresh one.
        """
        self.name = name
        self.platform = platform
        self.bus = bus
        self.handlers = dict(handlers)
        self.processing_time = processing_time
        if enclave is None:
            self.code = EnclaveCode("svc-" + name, SERVICE_ENTRY_POINTS)
            self.enclave = platform.load_enclave(self.code)
        else:
            self.code = enclave.code
            self.enclave = enclave
        self.enclave.ecall("install_keys", topic_keys)
        self.healthy = True
        self.slowdown = 1.0  # >1 simulates resource starvation
        for topic in self.handlers:
            bus.subscribe(topic, self._on_event)
        self._observers = []

    @property
    def measurement(self):
        """The service enclave's measurement."""
        return self.enclave.measurement

    def add_observer(self, observer):
        """``observer(service, event, latency)`` after each handled event."""
        self._observers.append(observer)

    def _on_event(self, event):
        """Runtime-side delivery: schedule in-enclave processing."""
        if not self.healthy:
            return  # crashed service: silently drops (heartbeat catches it)
        env = self.bus.env
        delay = self.processing_time * self.slowdown
        done = env.timeout(delay, value=event)

        def process(fired):
            outputs = self.enclave.ecall(
                "handle",
                self.handlers[fired.value.topic],
                self.name,
                fired.value,
                self.bus.next_sequence,
            )
            for sealed in outputs:
                self.bus.publish(sealed)
            for observer in self._observers:
                observer(self, fired.value, delay)

        done.callbacks.append(process)

    def stats(self):
        """In-enclave counters."""
        return self.enclave.ecall("stats")

    def crash(self):
        """Simulate a failure (stops handling and heartbeating)."""
        self.healthy = False

    def recover(self):
        """Bring the service back."""
        self.healthy = True
