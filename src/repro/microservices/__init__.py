"""The SecureCloud micro-service layer (paper Figure 1).

Applications are sets of micro-services connected by an event bus.
Each service's application logic lives inside an enclave; the runtime
outside only ever touches encrypted events.  An orchestrator watches
QoS metrics and adapts the virtual infrastructure within milliseconds
(paper Section VI, use case 2).

- :mod:`~repro.microservices.eventbus` -- topic-based bus with virtual
  delivery latency and per-topic FIFO ordering.
- :mod:`~repro.microservices.service` -- the micro-service frame:
  enclave-hosted handlers, sealed inputs and outputs.
- :mod:`~repro.microservices.registry` -- service discovery with
  measurement pinning.
- :mod:`~repro.microservices.qos` -- QoS monitoring, resource
  accounting, and billing.
- :mod:`~repro.microservices.orchestrator` -- anomaly detection and
  reaction.
"""

from repro.microservices.eventbus import EventBus, SealedEvent
from repro.microservices.orchestrator import Orchestrator, OrchestratorPolicy
from repro.microservices.qos import BillingReport, QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.microservices.service import MicroService

__all__ = [
    "BillingReport",
    "EventBus",
    "MicroService",
    "Orchestrator",
    "OrchestratorPolicy",
    "QosMonitor",
    "SealedEvent",
    "ServiceRegistry",
]
