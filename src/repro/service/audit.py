"""Sealed append-only audit trail: a per-tenant AEAD hash chain.

Every request a tenant makes through the front door leaves exactly one
entry in that tenant's audit chain, sealed *inside the gateway enclave*
under the tenant's audit key.  The host stores and forwards opaque
blobs -- like sealed telemetry snapshots, the observability channel
must not become an integrity hole:

- each entry's associated data binds the tenant id, the entry's
  sequence number, and the hash of everything before it, so an entry
  can neither be moved to another position nor grafted into another
  tenant's chain (splice fails the AEAD tag);
- the chain head is a running ``sha256(prev_hash || entry)``; the
  enclave keeps ``(count, head_hash)`` and attests it on export, so
  dropping a suffix (or the whole chain) is caught even though every
  remaining blob still verifies individually -- truncation fails
  closed;
- entry nonces are derived from the key, position, previous hash, and
  the entry digest, so two same-seed runs of a deterministic workload
  produce *byte-identical* chains (the chaos determinism gate diffs
  them) without ever reusing a keystream on distinct plaintexts.

Verification is pure: :func:`verify_chain` needs only the tenant's
audit key, the blobs, and the attested head -- the conformance oracle
(tests/service/oracle.py) runs it offline against independently derived
keys.
"""

import json
from dataclasses import dataclass

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey, Ciphertext, NONCE_SIZE
from repro.crypto.kdf import hkdf
from repro.crypto.primitives import sha256

AUDIT_DOMAIN = b"svc|audit|v1"
_NONCE_LABEL = b"svc|audit|nonce|"

# An entry's free-form detail is bounded so a single request can never
# balloon the sealed trail (and so round-trip property tests have a
# defined "max-size entry" to exercise).
MAX_DETAIL_BYTES = 4096


@dataclass(frozen=True)
class AuditEntry:
    """One audited request: who did what to which resource, and how it
    ended (``ok``, ``shed``, ``quota``, or ``error``)."""

    seq: int
    vtime: float
    action: str
    resource: str
    outcome: str
    detail: str = ""

    def canonical(self):
        """The exact bytes that are sealed and hashed into the chain."""
        if len(self.detail.encode("utf-8")) > MAX_DETAIL_BYTES:
            raise ConfigurationError(
                "audit detail exceeds %d bytes" % MAX_DETAIL_BYTES
            )
        return json.dumps(
            {
                "seq": self.seq,
                "vtime": self.vtime,
                "action": self.action,
                "resource": self.resource,
                "outcome": self.outcome,
                "detail": self.detail,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_canonical(cls, raw):
        """Parse canonical bytes back into an entry (fails closed)."""
        try:
            fields = json.loads(raw.decode("utf-8"))
            return cls(
                seq=int(fields["seq"]),
                vtime=float(fields["vtime"]),
                action=str(fields["action"]),
                resource=str(fields["resource"]),
                outcome=str(fields["outcome"]),
                detail=str(fields["detail"]),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise IntegrityError("malformed audit entry") from exc


def genesis_hash(tenant_id):
    """Each tenant's chain starts from its own genesis: two tenants'
    chains can never share a prefix, so whole-chain substitution is as
    detectable as a mid-chain splice."""
    return sha256(AUDIT_DOMAIN + b"|genesis|" + tenant_id.encode("utf-8"))


def entry_aad(tenant_id, seq, prev_hash):
    """Associated data binding an entry to tenant, position, and past."""
    return (
        AUDIT_DOMAIN + b"|" + tenant_id.encode("utf-8") + b"|"
        + seq.to_bytes(8, "big") + b"|" + prev_hash
    )


def _entry_nonce(key, tenant_id, seq, prev_hash, raw):
    # Deterministic but collision-free: the nonce is a function of the
    # key, the chain position, the entire prefix (through prev_hash),
    # and the entry content itself, so identical workloads reproduce
    # identical blobs while distinct plaintexts never share a keystream.
    return hkdf(
        key.key_bytes,
        _NONCE_LABEL + tenant_id.encode("utf-8")
        + seq.to_bytes(8, "big") + prev_hash + sha256(raw),
        length=NONCE_SIZE,
    )


def seal_entry(key, tenant_id, entry, prev_hash):
    """Seal one entry onto the chain; returns ``(blob, new_head)``."""
    raw = entry.canonical()
    blob = key.encrypt(
        raw,
        aad=entry_aad(tenant_id, entry.seq, prev_hash),
        nonce=_entry_nonce(key, tenant_id, entry.seq, prev_hash, raw),
    ).to_bytes()
    return blob, sha256(prev_hash + raw)


def open_entry(key, tenant_id, seq, prev_hash, blob):
    """Open the entry at ``seq``; returns ``(entry, new_head)``.

    Any mutation of the blob, a wrong position, a wrong predecessor, or
    a foreign tenant's entry fails the AEAD tag.
    """
    try:
        raw = key.decrypt(
            Ciphertext.from_bytes(blob),
            aad=entry_aad(tenant_id, seq, prev_hash),
        )
    except IntegrityError as exc:
        raise IntegrityError(
            "audit entry %d failed authentication for tenant %r"
            % (seq, tenant_id)
        ) from exc
    entry = AuditEntry.from_canonical(raw)
    if entry.seq != seq:
        raise IntegrityError("audit entry sequence mismatch")
    return entry, sha256(prev_hash + raw)


def verify_chain(key, tenant_id, blobs, count, head_hash):
    """Verify a whole exported chain against its attested head.

    Returns the decoded entries.  Raises :class:`IntegrityError` on any
    single-entry mutation, reorder, truncation (the attested ``count``
    and ``head_hash`` no longer match), or splice of another tenant's
    entries.
    """
    blobs = list(blobs)
    if len(blobs) != count:
        raise IntegrityError(
            "audit chain for %r has %d entries, head attests %d"
            % (tenant_id, len(blobs), count)
        )
    prev = genesis_hash(tenant_id)
    entries = []
    for seq, blob in enumerate(blobs):
        entry, prev = open_entry(key, tenant_id, seq, prev, blob)
        entries.append(entry)
    if prev != head_hash:
        raise IntegrityError(
            "audit chain head mismatch for tenant %r" % tenant_id
        )
    return entries


def chain_digest(blobs):
    """One hex digest over the sealed wire bytes of a whole chain.

    Benchmarks put this in their result rows, so the chaos determinism
    gate (two same-seed runs must produce identical rows) transitively
    pins the audit trail byte-for-byte.
    """
    ctx = b"".join(
        len(blob).to_bytes(4, "big") + bytes(blob) for blob in blobs
    )
    return sha256(AUDIT_DOMAIN + b"|digest|" + ctx).hex()


class AuditChain:
    """The in-enclave, append-only side of one tenant's trail.

    Lives in the gateway enclave's state; the host receives each sealed
    blob for storage but can neither read nor reorder them.  ``seen``
    holds request ids already recorded so a request replayed through
    the retry substrate (after an enclave crash mid-request) lands in
    the chain exactly once.
    """

    def __init__(self, key, tenant_id):
        self.key = key
        self.tenant_id = tenant_id
        self.count = 0
        self.head = genesis_hash(tenant_id)
        self.seen = set()

    def append(self, vtime, action, resource, outcome, detail=""):
        """Seal the next entry; returns its blob."""
        entry = AuditEntry(
            seq=self.count, vtime=vtime, action=action,
            resource=resource, outcome=outcome, detail=detail,
        )
        blob, self.head = seal_entry(
            self.key, self.tenant_id, entry, self.head
        )
        self.count += 1
        return blob

    def head_state(self):
        """The serialisable head: count, head hash, and seen ids."""
        return {
            "count": self.count,
            "head": self.head.hex(),
            "seen": sorted(self.seen),
        }

    def restore_head(self, state):
        """Adopt a previously sealed head (post-crash recovery)."""
        self.count = int(state["count"])
        self.head = bytes.fromhex(state["head"])
        self.seen = set(state["seen"])
