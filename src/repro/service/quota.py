"""Per-tenant quotas and billing, wired to the existing QoS plane.

Quotas bound what a tenant may *hold* (sealed bytes, jobs,
subscriptions, stream attachments); admission control bounds how fast
they may *ask*.  Exhausting a quota is a counted, audited rejection
(:class:`~repro.errors.QuotaExceededError`), never a silent drop.

Billing rides the existing :class:`~repro.microservices.qos.QosMonitor`
machinery: the front door registers each tenant as a metered service
and observes per-request handling latency onto it, so
``QosMonitor.billing_report`` prices tenants with the same code path
that prices microservices -- and the conformance suite can assert the
ledger, the QoS counters, and the billing lines agree exactly, with
telemetry on or off.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError, QuotaExceededError
from repro.microservices.qos import ServiceMetrics
from repro.telemetry import default_registry

QUOTA_KINDS = ("sealed_bytes", "jobs", "subscriptions", "streams")


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may hold at once."""

    sealed_bytes: int = 64 * 1024 * 1024
    jobs: int = 64
    subscriptions: int = 256
    streams: int = 8

    def limit(self, kind):
        if kind not in QUOTA_KINDS:
            raise ConfigurationError("unknown quota kind %r" % kind)
        return getattr(self, kind)


class QuotaLedger:
    """Usage and rejection accounting per tenant.

    ``usage``/``rejected`` are the functional stores; the registry
    mirrors them so an enabled-telemetry run sees per-tenant quota
    pressure without touching the accounting the tests gate on.
    """

    def __init__(self, default_quota=None):
        self.default_quota = default_quota or TenantQuota()
        self.quotas = {}
        self.usage = {}
        self.rejected = {}
        self._registry = default_registry()

    def register(self, tenant_id, quota=None):
        """Assign a tenant its quota (idempotent)."""
        if tenant_id not in self.quotas:
            self.quotas[tenant_id] = quota or self.default_quota
            self.usage[tenant_id] = {kind: 0 for kind in QUOTA_KINDS}
            self.rejected[tenant_id] = {kind: 0 for kind in QUOTA_KINDS}
        return self.quotas[tenant_id]

    def _require(self, tenant_id):
        if tenant_id not in self.quotas:
            raise ConfigurationError(
                "tenant %r has no quota assigned" % tenant_id
            )

    def charge(self, tenant_id, kind, amount=1):
        """Reserve ``amount`` of ``kind``; fails closed at the limit."""
        self._require(tenant_id)
        if amount < 0:
            raise ConfigurationError("cannot charge a negative amount")
        limit = self.quotas[tenant_id].limit(kind)
        used = self.usage[tenant_id][kind]
        if used + amount > limit:
            self.rejected[tenant_id][kind] += 1
            self._registry.counter(
                "service.quota_rejected", tenant=tenant_id, kind=kind
            ).inc()
            raise QuotaExceededError(
                "tenant %r over %s quota (%d + %d > %d)"
                % (tenant_id, kind, used, amount, limit)
            )
        self.usage[tenant_id][kind] = used + amount
        self._registry.gauge(
            "service.quota_used", tenant=tenant_id, kind=kind
        ).set(used + amount)
        return used + amount

    def release(self, tenant_id, kind, amount=1):
        """Return quota (resource deletion); never goes negative."""
        self._require(tenant_id)
        used = max(0, self.usage[tenant_id][kind] - amount)
        self.usage[tenant_id][kind] = used
        self._registry.gauge(
            "service.quota_used", tenant=tenant_id, kind=kind
        ).set(used)
        return used

    def rejected_total(self, tenant_id):
        """All quota rejections for one tenant, across kinds."""
        self._require(tenant_id)
        return sum(self.rejected[tenant_id].values())


class TenantBilling:
    """Per-tenant metering through the QoS monitor.

    Each tenant is a line item in the same ``billing_report`` that
    prices microservices; ``observe`` records one handled request with
    its virtual handling latency.
    """

    def __init__(self, monitor):
        self.monitor = monitor

    def register(self, tenant_id):
        state = self.monitor.metrics.setdefault(
            tenant_id, ServiceMetrics(tenant_id)
        )
        state.last_heartbeat = self.monitor.env.now
        return state

    def observe(self, tenant_id, latency_seconds):
        state = self.monitor.metrics[tenant_id]
        state.observe(latency_seconds, self.monitor.env.now)
        self.monitor._registry.counter(
            "qos.events_handled", service=tenant_id
        ).inc()
        self.monitor._tel_latency.observe(latency_seconds)

    def report(self, cpu_second_price=0.00005):
        return self.monitor.billing_report(
            cpu_second_price=cpu_second_price
        )
