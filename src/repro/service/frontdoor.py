"""The multi-tenant secure front door over the sealed planes.

``SecureFrontDoor`` is the long-running, tenant-facing service layer
the stack has been missing: a datasets/jobs/studies-style resource
model where every request is admitted (token bucket in virtual time),
quota-checked, executed against the *real* planes, metered for
billing, and recorded in the tenant's sealed audit chain -- exactly
once, even when the gateway enclave crashes mid-request.

Routing:

====================  =============================================
request               plane
====================  =============================================
dataset upload        chunked-parallel sealing (``crypto.chunked``,
                      per-tenant dataset key, AAD-bound name)
job submit            secure map/reduce (``bigdata.mapreduce``,
                      per-job key minted in the gateway)
subscription/publish  sharded SCBR plane (``scbr.sharding``)
stream attach         sealed streaming plane (``repro.streams``)
====================  =============================================

Failure handling rides the shared substrate: gateway crashes surface
as :class:`~repro.errors.EnclaveLostError`, the retry loop recovers
the enclave from its platform-sealed root and the host-stored sealed
chain heads, and the request replays -- the in-enclave request-id
dedup makes the audit entry exactly-once.  Every terminal outcome is
counted: ``offered == completed + shed + quota_rejected + failed`` is
an asserted identity, not a hope.
"""

from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    EnclaveLostError,
    QuotaExceededError,
    SecureCloudError,
)
from repro.crypto.aead import AeadKey
from repro.crypto.primitives import DeterministicRandomSource
from repro.microservices.qos import QosMonitor
from repro.retry import BackoffClock, RetryPolicy, retry_call
from repro.scbr.provisioning import CachedAttestationVerifier
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import cycles_to_seconds
from repro.telemetry import DEFAULT_CYCLE_BUCKETS, default_registry

from repro.service.admission import AdmissionController
from repro.service.gateway import GATEWAY_CODE
from repro.service.quota import QuotaLedger, TenantBilling, TenantQuota


class FrontDoorConfig:
    """Tunables of one front door (all deterministic)."""

    def __init__(self, admit_rate=50.0, admit_burst=10.0,
                 default_quota=None, chunk_size=None, seal_workers=None,
                 scbr_shards=2, stream_shards=2, stream_window=None,
                 retry_policy=None):
        self.admit_rate = admit_rate
        self.admit_burst = admit_burst
        self.default_quota = default_quota or TenantQuota()
        self.chunk_size = chunk_size
        self.seal_workers = seal_workers
        self.scbr_shards = scbr_shards
        self.stream_shards = stream_shards
        self.stream_window = stream_window
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=5)


@dataclass(frozen=True)
class Receipt:
    """What the tenant gets back: outcome plus audited position."""

    request_id: str
    tenant: str
    action: str
    resource: str
    outcome: str           # ok | shed | quota | error
    detail: dict = field(default_factory=dict)
    virtual_ms: float = 0.0

    @property
    def ok(self):
        return self.outcome == "ok"


class SecureFrontDoor:
    """Admission, quotas, sealed audit, and routing for N tenants."""

    def __init__(self, env, seed=0, config=None, chaos=None,
                 root_key=None, attested=True):
        self.env = env
        self.seed = seed
        self.config = config or FrontDoorConfig()
        self.chaos = chaos
        self.platform = SgxPlatform(seed=seed, quoting_key_bits=512)
        self.attestation = AttestationService()
        self.attestation.register_platform(
            self.platform.platform_id,
            self.platform.quoting_enclave.public_key,
        )
        self.attestation.trust_measurement(GATEWAY_CODE.measurement)
        # The PR 8 cached verifier fronts every quote check the door
        # performs -- gateway bring-up, recovery re-attestation, and
        # (transitively) the SCBR/stream planes it instantiates.
        self.verifier = (
            CachedAttestationVerifier(self.attestation) if attested
            else None
        )
        # The operator's service root: seed-derived by default so two
        # same-seed doors seal byte-identical state (the determinism
        # gates diff exactly that); production hands in a real key.
        self._root_key = root_key or AeadKey.generate(
            DeterministicRandomSource(0x5EC0 + seed)
        )

        self.gateway = None
        self.sealed_root = None
        self.gateway_recoveries = 0
        self._spawn_gateway(first=True)

        self.admission = AdmissionController(
            self.config.admit_rate, self.config.admit_burst
        )
        self.quota = QuotaLedger(self.config.default_quota)
        self.monitor = QosMonitor(env)
        self.billing = TenantBilling(self.monitor)
        self.backoff = BackoffClock()

        # Resource model: per tenant, named sealed datasets, completed
        # jobs, live subscriptions, and attached stream sources.
        self.tenants = []
        self.datasets = {}
        self.jobs = {}
        self.subscriptions = {}
        self.streams = {}
        # The sealed audit store the host keeps for each tenant: the
        # ordered blobs plus the latest platform-sealed head.
        self.audit_blobs = {}
        self.audit_heads = {}

        # Terminal-outcome accounting (the silent-loss identity).
        self.completed = {}
        self.failed = {}
        self.latencies_ms = {}
        self._request_seq = {}
        self._ops = 0

        self._router = None
        self._scbr_clients = {}
        self._stream_plane = None

        registry = default_registry()
        self._registry = registry
        self._tel_requests = registry.histogram(
            "service.request_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        self._tel_recoveries = registry.counter("service.gateway_recoveries")
        self._tel_audit_entries = registry.counter("service.audit_entries")

    # -- gateway lifecycle ---------------------------------------------

    def _spawn_gateway(self, first=False):
        """Load, attest, and provision (or restore) the gateway."""
        self.gateway = self.platform.load_enclave(
            GATEWAY_CODE, name="svc-gateway"
        )
        if self.verifier is not None:
            quote = self.platform.quote(
                self.gateway, report_data=b"svc-gateway-join"
            )
            self.verifier.verify(
                quote, expected_measurement=GATEWAY_CODE.measurement
            )
        if first:
            self.sealed_root = self.gateway.ecall(
                "setup", self._root_key.key_bytes
            )
        else:
            self.gateway.ecall(
                "restore", self.sealed_root, dict(self.audit_heads)
            )

    def _recover_gateway(self):
        """Respawn after a crash; chains resume from sealed heads."""
        self.gateway_recoveries += 1
        self._tel_recoveries.inc()
        self._spawn_gateway(first=False)

    def _maybe_crash(self, stage):
        """Seeded mid-request gateway crash (chaos plane hook)."""
        self._ops += 1
        if self.chaos is not None and self.chaos.crashes_shard(
            "gateway", "%s|%d" % (stage, self._ops)
        ):
            self.gateway.destroy()
            raise EnclaveLostError(
                "gateway enclave crashed mid-request (%s)" % stage
            )

    # -- tenants --------------------------------------------------------

    def register_tenant(self, tenant_id, quota=None, rate=None,
                        burst=None):
        """Bring one tenant onto the door: keys, bucket, quota, books."""
        if tenant_id in self.datasets:
            return tenant_id
        blob, head = self.gateway.ecall(
            "register_tenant", tenant_id, self.env.now
        )
        self.audit_blobs[tenant_id] = [blob] if blob is not None else []
        self.audit_heads[tenant_id] = head
        if blob is not None:
            self._tel_audit_entries.inc()
        self.admission.register(
            tenant_id, rate=rate, burst=burst, now=self.env.now
        )
        self.quota.register(tenant_id, quota)
        self.billing.register(tenant_id)
        self.tenants.append(tenant_id)
        self.datasets[tenant_id] = {}
        self.jobs[tenant_id] = {}
        self.subscriptions[tenant_id] = set()
        self.streams[tenant_id] = {}
        self.completed[tenant_id] = 0
        self.failed[tenant_id] = 0
        self.latencies_ms[tenant_id] = []
        self._request_seq[tenant_id] = 0
        return tenant_id

    def _require_tenant(self, tenant_id):
        if tenant_id not in self.datasets:
            raise ConfigurationError(
                "tenant %r is not registered" % tenant_id
            )

    # -- the audited request pipeline ----------------------------------

    def _audit(self, tenant_id, request_id, action, resource, outcome,
               detail=""):
        """One exactly-once audit append, storing blob and head."""
        blob, head = self.gateway.ecall(
            "append_audit", tenant_id, request_id, self.env.now,
            action, resource, outcome, detail,
        )
        self.audit_heads[tenant_id] = head
        if blob is not None:
            self.audit_blobs[tenant_id].append(blob)
            self._tel_audit_entries.inc()

    def _request(self, tenant_id, action, resource, body,
                 cost=1.0, quota_kind=None, quota_amount=0):
        """Admission -> quota -> retried body + audit -> metering."""
        self._require_tenant(tenant_id)
        self._request_seq[tenant_id] += 1
        request_id = "%s|%s|%s|%d" % (
            tenant_id, action, resource, self._request_seq[tenant_id]
        )
        clock = self.platform.clock
        start = clock.now

        def finish(outcome, detail):
            elapsed = clock.now - start
            virtual_ms = 1000.0 * cycles_to_seconds(
                elapsed, clock.frequency_hz
            )
            self._tel_requests.observe(elapsed)
            if outcome == "ok":
                self.completed[tenant_id] += 1
                self.latencies_ms[tenant_id].append(virtual_ms)
                self.billing.observe(
                    tenant_id, cycles_to_seconds(elapsed, clock.frequency_hz)
                )
            return Receipt(
                request_id=request_id, tenant=tenant_id, action=action,
                resource=resource, outcome=outcome, detail=detail,
                virtual_ms=virtual_ms,
            )

        if not self.admission.admit(tenant_id, self.env.now, cost):
            # Shed before any sealed-plane work -- but never silently:
            # the rejection itself is an audited, sealed fact.
            self._with_recovery(
                lambda: self._audit(
                    tenant_id, request_id, action, resource, "shed"
                )
            )
            return finish("shed", {})
        if quota_kind is not None:
            try:
                self.quota.charge(tenant_id, quota_kind, quota_amount)
            except QuotaExceededError as exc:
                self._with_recovery(
                    lambda: self._audit(
                        tenant_id, request_id, action, resource,
                        "quota", exc.__class__.__name__,
                    )
                )
                return finish("quota", {"error": str(exc)})

        def attempt(_attempt):
            # Crash points bracket the plane work and the audit append:
            # "pre" models an enclave death before anything happened,
            # "ack" models the sealed entry's acknowledgement getting
            # lost with the enclave after the append.  Either way the
            # replay converges on exactly one chain entry.
            self._maybe_crash("pre")
            detail = body()
            self._audit(
                tenant_id, request_id, action, resource, "ok",
                detail.get("audit", ""),
            )
            self._maybe_crash("ack")
            return detail

        def on_retry(_attempt, error, _delay):
            if isinstance(error, EnclaveLostError) and (
                self.gateway.destroyed
            ):
                self._recover_gateway()

        try:
            detail = retry_call(
                attempt, self.config.retry_policy, self.backoff,
                on_retry=on_retry,
            )
        except SecureCloudError as exc:
            if quota_kind is not None:
                self.quota.release(tenant_id, quota_kind, quota_amount)
            self.failed[tenant_id] += 1
            self._with_recovery(
                lambda: self._audit(
                    tenant_id, request_id, action, resource, "error",
                    exc.__class__.__name__,
                )
            )
            return finish("error", {"error": str(exc)})
        return finish("ok", detail)

    def _with_recovery(self, operation):
        """Run a gateway call, recovering once if the enclave is dark.

        Used for the bookkeeping appends outside the main retry loop
        (shed/quota/error outcomes must land even when a previous
        request killed the gateway).
        """
        try:
            return operation()
        except EnclaveLostError:
            self._recover_gateway()
            return operation()

    # -- datasets -------------------------------------------------------

    def upload_dataset(self, tenant_id, name, records):
        """Seal ``records`` under the tenant's dataset key (chunked)."""
        records = [bytes(record) for record in records]
        payload = sum(len(record) for record in records)

        def body():
            blob = self.gateway.ecall(
                "seal_dataset", tenant_id, name, records,
                self.config.chunk_size, self.config.seal_workers,
            )
            self.datasets[tenant_id][name] = blob
            return {
                "sealed_bytes": len(blob),
                "records": len(records),
                "audit": "records=%d bytes=%d" % (len(records), payload),
            }

        return self._request(
            tenant_id, "dataset.upload", name, body,
            quota_kind="sealed_bytes", quota_amount=payload,
        )

    def open_dataset(self, tenant_id, name):
        """Open a tenant's sealed dataset (in-boundary staging)."""
        self._require_tenant(tenant_id)
        blob = self.datasets[tenant_id].get(name)
        if blob is None:
            raise ConfigurationError(
                "tenant %r has no dataset %r" % (tenant_id, name)
            )
        return self._with_recovery(
            lambda: self.gateway.ecall(
                "open_dataset", tenant_id, name, blob,
                self.config.seal_workers,
            )
        )

    # -- jobs -----------------------------------------------------------

    def submit_job(self, tenant_id, job_name, dataset_name, map_fn,
                   reduce_fn, mappers=2, reducers=2):
        """Run a secure map/reduce over one of the tenant's datasets.

        The job key is minted in the gateway from the tenant root, so
        every split, shuffle partition, and output of tenant A's job is
        sealed under material tenant B can never derive.
        """
        from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce

        def body():
            records = [
                record.decode("utf-8")
                for record in self.open_dataset(tenant_id, dataset_name)
            ]
            job_key = AeadKey(self._with_recovery(
                lambda: self.gateway.ecall("job_key", tenant_id, job_name)
            ))
            job = MapReduceJob(
                map_fn=map_fn, reduce_fn=reduce_fn,
                mappers=mappers, reducers=reducers,
            )
            engine = SecureMapReduce(
                self.platform, job,
                chaos=self.chaos,
                retry_policy=self.config.retry_policy,
                job_key=job_key,
                seal_workers=self.config.seal_workers,
            )
            result = engine.run(records)
            summary = {
                "keys": len(result),
                "crashes": engine.crashes_detected,
                "result": result,
            }
            self.jobs[tenant_id][job_name] = summary
            return {
                "keys": len(result),
                "crashes": engine.crashes_detected,
                "audit": "dataset=%s keys=%d" % (dataset_name, len(result)),
            }

        return self._request(
            tenant_id, "job.submit", job_name, body,
            quota_kind="jobs", quota_amount=1,
        )

    # -- SCBR subscriptions ---------------------------------------------

    def _ensure_router(self):
        if self._router is None:
            from repro.scbr.sharding import ShardedScbrRouter

            self._router = ShardedScbrRouter(
                self.platform,
                lambda i: SgxPlatform(
                    seed=1000 * (self.seed + 1) + i, quoting_key_bits=512
                ),
                attestation_service=self.attestation,
                shards=self.config.scbr_shards,
            )
            self.attestation.trust_measurement(self._router.measurement)
        return self._router

    def _scbr_client(self, tenant_id):
        client = self._scbr_clients.get(tenant_id)
        if client is None:
            from repro.scbr.router import ScbrClient

            client = ScbrClient(
                tenant_id, self._ensure_router(), self.attestation
            )
            self._scbr_clients[tenant_id] = client
        return client

    def subscribe(self, tenant_id, subscription_id, constraints):
        """Route a subscription into the sharded matching plane.

        ``constraints`` may be :class:`~repro.scbr.filters.Constraint`
        objects or ``(attribute, operator, value)`` triples (operator
        as its string form, e.g. ``">"``).
        """
        from repro.scbr.filters import Constraint, Operator, Subscription

        self._ensure_router()
        parsed = [
            c if isinstance(c, Constraint)
            else Constraint(c[0], Operator(c[1]), c[2])
            for c in constraints
        ]

        def body():
            client = self._scbr_client(tenant_id)
            admitted_id = client.subscribe(Subscription(
                subscription_id, parsed, tenant_id
            ))
            self.subscriptions[tenant_id].add(admitted_id)
            return {
                "subscription": admitted_id,
                "audit": "sub=%s" % admitted_id,
            }

        return self._request(
            tenant_id, "scbr.subscribe", subscription_id, body,
            quota_kind="subscriptions", quota_amount=1,
        )

    def publish(self, tenant_id, attributes):
        """Publish into the matching plane; notifications fan out."""
        from repro.scbr.filters import Publication

        self._ensure_router()

        def body():
            client = self._scbr_client(tenant_id)
            notifications = client.publish(Publication(dict(attributes)))
            count = (
                len(notifications)
                if isinstance(notifications, list) else 0
            )
            return {"notifications": count, "audit": "match=%d" % count}

        return self._request(tenant_id, "scbr.publish", "-", body)

    # -- streams --------------------------------------------------------

    def _ensure_stream_plane(self):
        if self._stream_plane is None:
            from repro.cluster.nodes import NodeTopology
            from repro.streams import SecureStreamPlane, StreamConfig

            topology = NodeTopology.build(3, seed=self.seed + 7)
            self._stream_plane = SecureStreamPlane(
                topology,
                StreamConfig(window=self.config.stream_window),
                shards=self.config.stream_shards,
                seed=self.seed + 8,
                env=self.env,
                name="svc-streams",
            )
        return self._stream_plane

    def attach_stream(self, tenant_id, name, fleet, meters,
                      batch_records=12):
        """Attach a sealed meter stream source for this tenant."""
        from repro.streams import MeterStreamSource

        plane = self._ensure_stream_plane()

        def body():
            source = MeterStreamSource(
                "%s-%s" % (tenant_id, name), fleet, meters,
                plane.ingest_key_bytes, batch_records=batch_records,
            )
            self.streams[tenant_id][name] = source
            return {"source": source.source_id,
                    "audit": "stream=%s" % name}

        return self._request(
            tenant_id, "stream.attach", name, body,
            quota_kind="streams", quota_amount=1,
        )

    def stream_round(self, tenant_id, name, start, horizon):
        """Produce one horizon of readings and pump it through."""
        plane = self._ensure_stream_plane()

        def body():
            source = self.streams[tenant_id].get(name)
            if source is None:
                raise ConfigurationError(
                    "tenant %r has no stream %r" % (tenant_id, name)
                )
            before = len(plane.committed)
            source.produce(start, start + horizon)
            rounds = 0
            while rounds < 10_000 and (source.backlog or any(
                plane.shards[sid].queue
                for sid in plane.table.shard_ids()
            )):
                rounds += 1
                self.env.run(until=self.env.now
                             + plane.config.round_interval)
                plane.pump([source])
            committed = len(plane.committed) - before
            return {"committed": committed, "rounds": rounds,
                    "audit": "windows=%d" % committed}

        return self._request(
            tenant_id, "stream.round", name, body
        )

    # -- audit verification and accounting ------------------------------

    def verify_audit(self, tenant_id):
        """In-enclave verification of the host-stored chain; count."""
        self._require_tenant(tenant_id)
        return self._with_recovery(
            lambda: self.gateway.ecall(
                "verify_audit", tenant_id,
                list(self.audit_blobs[tenant_id]),
            )
        )

    def audit_head(self, tenant_id):
        """The attested plaintext head: ``(count, head_hash_hex)``."""
        self._require_tenant(tenant_id)
        return self._with_recovery(
            lambda: self.gateway.ecall("audit_head", tenant_id)
        )

    def export_audit(self, tenant_id):
        """The sealed blobs the host stores (operator verification)."""
        self._require_tenant(tenant_id)
        return list(self.audit_blobs[tenant_id])

    def stats(self, tenant_id):
        """The full accounting picture for one tenant."""
        self._require_tenant(tenant_id)
        admission = self.admission.counts(tenant_id)
        return {
            **admission,
            "quota_rejected": self.quota.rejected_total(tenant_id),
            "completed": self.completed[tenant_id],
            "failed": self.failed[tenant_id],
            "audit_entries": len(self.audit_blobs[tenant_id]),
            "usage": dict(self.quota.usage[tenant_id]),
        }

    def check_identity(self):
        """The door-wide silent-loss identity, across all tenants.

        Every offered request must end as exactly one of: completed,
        shed, quota-rejected, or failed.  Raises on imbalance; returns
        the totals otherwise.
        """
        totals = self.admission.check_identity()
        accounted = {"completed": 0, "quota_rejected": 0, "failed": 0}
        for tenant_id in self.tenants:
            accounted["completed"] += self.completed[tenant_id]
            accounted["quota_rejected"] += (
                self.quota.rejected_total(tenant_id)
            )
            accounted["failed"] += self.failed[tenant_id]
        if totals["offered"] != (
            accounted["completed"] + totals["shed"]
            + accounted["quota_rejected"] + accounted["failed"]
        ):
            raise ConfigurationError(
                "front-door books do not balance: %r vs %r"
                % (totals, accounted)
            )
        return {**totals, **accounted}
