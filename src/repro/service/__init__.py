"""Multi-tenant secure front door over the SecureCloud planes.

The service layer the paper's deployment story implies but earlier
PRs only built pieces of: tenants register through an attested
gateway enclave, get isolated key hierarchies derived from a sealed
service root, and drive the real planes (chunked sealing, secure
map/reduce, sharded SCBR, sealed streams) through one admitted,
quota-checked, billed, and sealed-audit-trailed request pipeline.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.audit import (
    AuditChain,
    AuditEntry,
    chain_digest,
    genesis_hash,
    open_entry,
    seal_entry,
    verify_chain,
)
from repro.service.frontdoor import (
    FrontDoorConfig,
    Receipt,
    SecureFrontDoor,
)
from repro.service.gateway import (
    GATEWAY_CODE,
    dataset_aad,
    derive_job_key,
    derive_purpose_key,
    derive_tenant_root,
)
from repro.service.quota import (
    QUOTA_KINDS,
    QuotaLedger,
    TenantBilling,
    TenantQuota,
)

__all__ = [
    "AdmissionController",
    "AuditChain",
    "AuditEntry",
    "FrontDoorConfig",
    "GATEWAY_CODE",
    "QUOTA_KINDS",
    "QuotaLedger",
    "Receipt",
    "SecureFrontDoor",
    "TenantBilling",
    "TenantQuota",
    "TokenBucket",
    "chain_digest",
    "dataset_aad",
    "derive_job_key",
    "derive_purpose_key",
    "derive_tenant_root",
    "genesis_hash",
    "open_entry",
    "seal_entry",
    "verify_chain",
]
