"""Admission control at the front door: token buckets in virtual time.

The SecureStreams lesson is that admission control must sit *in front
of* the sealed planes: once a request crosses into an enclave it has
already consumed EPC, transitions, and matching work, so overload has
to be turned away at the boundary -- deterministically, and with every
turned-away request *counted* (shedding is visible degradation, never
silent loss).

Each tenant gets one :class:`TokenBucket` refilled continuously on the
simulation clock; decisions are a pure function of the request sequence
and virtual time, so two same-seed runs shed the same requests.  The
controller maintains the accounting identity every benchmark and
conformance test gates on::

    offered == admitted + shed
"""

from repro.errors import ConfigurationError
from repro.telemetry import default_registry


class TokenBucket:
    """A continuous-refill token bucket on virtual time.

    ``rate`` tokens accrue per virtual second up to ``burst``; a take
    of ``cost`` tokens succeeds only when the bucket holds them.  All
    arithmetic is float-deterministic: same request times, same
    decisions.
    """

    def __init__(self, rate, burst, now=0.0):
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = float(now)

    def _refill(self, now):
        if now < self.stamp:
            raise ConfigurationError(
                "virtual time went backwards (%.6f < %.6f)"
                % (now, self.stamp)
            )
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now

    def available(self, now):
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.tokens

    def take(self, now, cost=1.0):
        """Try to take ``cost`` tokens; False means shed."""
        if cost < 0:
            raise ConfigurationError("cost must be non-negative")
        self._refill(now)
        if self.tokens < cost:
            return False
        self.tokens -= cost
        return True


class AdmissionController:
    """Per-tenant rate limiting with audited accounting.

    ``offered``/``admitted``/``shed`` are the functional counters the
    benchmarks read; the telemetry registry mirrors them per tenant
    (counter-migration style: identical counts with telemetry on or
    off).
    """

    def __init__(self, default_rate=50.0, default_burst=10.0):
        self.default_rate = default_rate
        self.default_burst = default_burst
        self.buckets = {}
        self.offered = {}
        self.admitted = {}
        self.shed = {}
        registry = default_registry()
        self._registry = registry

    def register(self, tenant_id, rate=None, burst=None, now=0.0):
        """Create the tenant's bucket (idempotent)."""
        if tenant_id not in self.buckets:
            self.buckets[tenant_id] = TokenBucket(
                rate if rate is not None else self.default_rate,
                burst if burst is not None else self.default_burst,
                now=now,
            )
            self.offered.setdefault(tenant_id, 0)
            self.admitted.setdefault(tenant_id, 0)
            self.shed.setdefault(tenant_id, 0)
        return self.buckets[tenant_id]

    def admit(self, tenant_id, now, cost=1.0):
        """Decide one request; returns True (admitted) or False (shed)."""
        bucket = self.buckets.get(tenant_id)
        if bucket is None:
            raise ConfigurationError(
                "tenant %r has no admission bucket" % tenant_id
            )
        self.offered[tenant_id] += 1
        self._registry.counter("service.offered", tenant=tenant_id).inc()
        if bucket.take(now, cost):
            self.admitted[tenant_id] += 1
            self._registry.counter(
                "service.admitted", tenant=tenant_id
            ).inc()
            return True
        self.shed[tenant_id] += 1
        self._registry.counter("service.shed", tenant=tenant_id).inc()
        return False

    def counts(self, tenant_id):
        """The accounting triple for one tenant."""
        return {
            "offered": self.offered.get(tenant_id, 0),
            "admitted": self.admitted.get(tenant_id, 0),
            "shed": self.shed.get(tenant_id, 0),
        }

    def check_identity(self):
        """offered == admitted + shed, for every tenant; returns totals.

        Raises :class:`ConfigurationError` if the books do not balance
        -- a request the controller cannot account for is exactly the
        silent loss the front door exists to rule out.
        """
        totals = {"offered": 0, "admitted": 0, "shed": 0}
        for tenant_id in self.buckets:
            counts = self.counts(tenant_id)
            if counts["offered"] != counts["admitted"] + counts["shed"]:
                raise ConfigurationError(
                    "admission books do not balance for %r: %r"
                    % (tenant_id, counts)
                )
            for key in totals:
                totals[key] += counts[key]
        return totals
