"""The front-door gateway enclave: tenant keys and audit, in-enclave.

The gateway is the one enclave every tenant request crosses.  Its
state -- the service root key, every tenant's derived key set, and
every tenant's audit chain head -- lives in enclave memory the host
cannot read.  The trust split mirrors the rest of the stack:

- the *service root key* is released to the gateway only after its
  quote verifies through the PR 8 cached attestation verifier (the
  operator provisioning a measured gateway, CAS-style), and is
  immediately platform-sealed so a crashed gateway restarts without a
  second key release;
- *per-tenant roots* are derived in-enclave via HKDF with per-tenant
  labels and never leave; purpose keys (dataset sealing, audit,
  per-job) derive from the tenant root with domain-separated labels,
  so no ciphertext sealed for tenant A can ever open under tenant B's
  keys -- the conformance oracle asserts exactly this, stack-wide;
- the *audit chain* appends happen in-enclave with request-id
  deduplication, so a request replayed through the retry substrate
  after a mid-request enclave crash is recorded exactly once; the
  head (count, hash, seen ids) is platform-sealed back to the host on
  every append, which is what makes the crash recoverable at all.

Per-job keys are returned to the map/reduce driver, which -- as since
PR 1 -- stands inside the trust boundary (it models a driver enclave;
it already holds job keys and provisions attested workers).
"""

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.crypto.kdf import hkdf
from repro.sgx.enclave import EnclaveCode

from repro.service.audit import AuditChain, verify_chain

# Virtual cycle costs of the gateway hot paths, in the same currency as
# the rest of the cost model.  An audit append is a hash plus one AEAD
# pass over a small record; sealing charges per record on top of a
# fixed ECALL body.
GATEWAY_SETUP_CYCLES = 60_000
TENANT_REGISTER_CYCLES = 25_000
AUDIT_APPEND_CYCLES = 9_000
DATASET_SEAL_BASE_CYCLES = 12_000
DATASET_SEAL_RECORD_CYCLES = 450
KEY_DERIVE_CYCLES = 4_000

# The derivation labels are public: the trust argument rests on the
# secrecy of the root, not of the schedule, and the conformance oracle
# re-derives every tenant key from them to audit isolation offline.
TENANT_LABEL = b"svc|tenant|"
AUDIT_KEY_LABEL = b"svc|key|audit"
DATASET_KEY_LABEL = b"svc|key|dataset"
JOB_KEY_LABEL = b"svc|key|job|"
_TENANT_LABEL = TENANT_LABEL
_AUDIT_LABEL = AUDIT_KEY_LABEL
_DATASET_LABEL = DATASET_KEY_LABEL
_JOB_LABEL = JOB_KEY_LABEL

_ROOT_SEAL_PREFIX = b"svc|root|v1|"


def derive_tenant_root(root_key_bytes, tenant_id):
    """Tenant root = HKDF(service root, per-tenant label).

    Module-level (not enclave-private) because the conformance oracle
    re-derives the same keys from the root to verify isolation; the
    *secrecy* of the derivation inputs, not of the schedule, is what
    the trust argument rests on.
    """
    return hkdf(
        root_key_bytes, _TENANT_LABEL + tenant_id.encode("utf-8")
    )


def derive_purpose_key(tenant_root, label):
    """A purpose key under one tenant root (audit, dataset, job...)."""
    return AeadKey(hkdf(tenant_root, label))


def derive_job_key(tenant_root, job_name):
    """The per-job sealing key handed to the map/reduce driver."""
    return hkdf(tenant_root, _JOB_LABEL + job_name.encode("utf-8"))


def dataset_aad(tenant_id, name):
    """Associated data binding a sealed dataset to tenant and name."""
    return (
        b"svc|dataset|v1|" + tenant_id.encode("utf-8")
        + b"|" + name.encode("utf-8")
    )


class _TenantState:
    """One tenant's in-enclave state: derived keys plus the chain."""

    def __init__(self, root_key_bytes, tenant_id):
        self.tenant_id = tenant_id
        self.root = derive_tenant_root(root_key_bytes, tenant_id)
        self.audit_key = derive_purpose_key(self.root, _AUDIT_LABEL)
        self.dataset_key = derive_purpose_key(self.root, _DATASET_LABEL)
        self.chain = AuditChain(self.audit_key, tenant_id)


def _require(ctx):
    state = ctx.state.get("gateway")
    if state is None:
        raise ConfigurationError("gateway enclave is not set up")
    return state


def _tenant(ctx, tenant_id):
    state = _require(ctx)
    tenant = state["tenants"].get(tenant_id)
    if tenant is None:
        raise ConfigurationError("unknown tenant %r" % tenant_id)
    return tenant


def _seal_head(ctx, tenant):
    """Platform-seal one tenant's chain head for host storage."""
    import json

    payload = json.dumps(
        {"tenant": tenant.tenant_id, **tenant.chain.head_state()},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return ctx.seal(payload)


def gw_setup(ctx, root_key_bytes):
    """First bring-up: adopt the operator-released root, seal it.

    Returns the platform-sealed root blob; the host stores it and a
    crashed gateway restarts from it via :func:`gw_restore` without
    the operator releasing the key again.
    """
    ctx.compute(GATEWAY_SETUP_CYCLES)
    ctx.state["gateway"] = {
        "root": bytes(root_key_bytes),
        "tenants": {},
    }
    return ctx.seal(_ROOT_SEAL_PREFIX + bytes(root_key_bytes))


def gw_restore(ctx, sealed_root, sealed_heads):
    """Post-crash restart: unseal the root, re-derive, restore heads.

    ``sealed_heads`` maps tenant id to the latest platform-sealed head
    blob the host stored.  Key re-derivation is deterministic, so the
    restarted gateway continues every chain exactly where the sealed
    head says it stopped; a host feeding a stale head is caught the
    moment the exported chain is verified against it.
    """
    import json

    ctx.compute(GATEWAY_SETUP_CYCLES)
    raw = ctx.unseal(sealed_root)
    if not raw.startswith(_ROOT_SEAL_PREFIX):
        raise IntegrityError("sealed gateway root has a foreign prefix")
    root = raw[len(_ROOT_SEAL_PREFIX):]
    state = {"root": root, "tenants": {}}
    ctx.state["gateway"] = state
    for tenant_id, head_blob in sealed_heads.items():
        tenant = _TenantState(root, tenant_id)
        head = json.loads(ctx.unseal(head_blob).decode("utf-8"))
        if head.get("tenant") != tenant_id:
            raise IntegrityError(
                "sealed audit head belongs to tenant %r, not %r"
                % (head.get("tenant"), tenant_id)
            )
        tenant.chain.restore_head(head)
        state["tenants"][tenant_id] = tenant
    return len(state["tenants"])


def gw_register_tenant(ctx, tenant_id, vtime):
    """Derive a fresh tenant's key set and open its audit chain.

    Returns ``(audit_blob, sealed_head)``; registration is idempotent
    (a replayed registration appends nothing).
    """
    state = _require(ctx)
    ctx.compute(TENANT_REGISTER_CYCLES)
    if tenant_id in state["tenants"]:
        tenant = state["tenants"][tenant_id]
        return None, _seal_head(ctx, tenant)
    tenant = _TenantState(state["root"], tenant_id)
    state["tenants"][tenant_id] = tenant
    blob = tenant.chain.append(
        vtime, "tenant.register", tenant_id, "ok"
    )
    return blob, _seal_head(ctx, tenant)


def gw_append_audit(ctx, tenant_id, request_id, vtime, action, resource,
                    outcome, detail=""):
    """Append one audited request outcome, exactly once per request.

    Returns ``(audit_blob_or_None, sealed_head)`` -- ``None`` when the
    request id was already recorded (a replay through the retry
    substrate after a crash between append and acknowledgement).
    """
    tenant = _tenant(ctx, tenant_id)
    ctx.compute(AUDIT_APPEND_CYCLES)
    if request_id in tenant.chain.seen:
        return None, _seal_head(ctx, tenant)
    blob = tenant.chain.append(vtime, action, resource, outcome, detail)
    tenant.chain.seen.add(request_id)
    return blob, _seal_head(ctx, tenant)


def gw_seal_dataset(ctx, tenant_id, name, records, chunk_size=None,
                    workers=None):
    """Seal a tenant's records under *their* dataset key (chunked).

    Large frames go through the chunked-parallel plane (``SB2``); the
    associated data binds tenant and dataset name, so a blob can never
    be opened as another tenant's -- or another dataset's -- data.
    """
    tenant = _tenant(ctx, tenant_id)
    records = [bytes(record) for record in records]
    ctx.compute(
        DATASET_SEAL_BASE_CYCLES
        + DATASET_SEAL_RECORD_CYCLES * len(records)
    )
    batch = tenant.dataset_key.encrypt_batch(
        records, aad=dataset_aad(tenant_id, name),
        chunk_size=chunk_size, workers=workers,
    )
    return batch.to_bytes()


def gw_open_dataset(ctx, tenant_id, name, blob, workers=None):
    """Open a sealed dataset for in-boundary processing (job staging)."""
    from repro.crypto.aead import SealedBatch

    tenant = _tenant(ctx, tenant_id)
    ctx.compute(DATASET_SEAL_BASE_CYCLES)
    return tenant.dataset_key.decrypt_batch(
        SealedBatch.from_bytes(blob),
        aad=dataset_aad(tenant_id, name),
        workers=workers,
    )


def gw_job_key(ctx, tenant_id, job_name):
    """Mint the per-job sealing key for the map/reduce driver."""
    tenant = _tenant(ctx, tenant_id)
    ctx.compute(KEY_DERIVE_CYCLES)
    return derive_job_key(tenant.root, job_name)


def gw_audit_head(ctx, tenant_id):
    """The attested plaintext head: ``(count, head_hash_hex)``.

    A commitment, not a secret -- the operator verifies exported
    chains against it offline (the oracle models that operator).
    """
    tenant = _tenant(ctx, tenant_id)
    return tenant.chain.count, tenant.chain.head.hex()


def gw_verify_audit(ctx, tenant_id, blobs):
    """In-enclave verification of the host-stored chain.

    Fails closed if the host mutated, reordered, truncated, or spliced
    the stored blobs; returns the verified entry count.
    """
    tenant = _tenant(ctx, tenant_id)
    ctx.compute(AUDIT_APPEND_CYCLES * max(len(blobs), 1))
    entries = verify_chain(
        tenant.audit_key, tenant_id, blobs,
        tenant.chain.count, tenant.chain.head,
    )
    return len(entries)


def gw_key_fingerprints(ctx, tenant_id):
    """Public fingerprints of a tenant's keys (safe to log/receipt)."""
    tenant = _tenant(ctx, tenant_id)
    return {
        "audit": tenant.audit_key.fingerprint(),
        "dataset": tenant.dataset_key.fingerprint(),
    }


GATEWAY_CODE = EnclaveCode(
    "service-gateway",
    entry_points={
        "setup": gw_setup,
        "restore": gw_restore,
        "register_tenant": gw_register_tenant,
        "append_audit": gw_append_audit,
        "seal_dataset": gw_seal_dataset,
        "open_dataset": gw_open_dataset,
        "job_key": gw_job_key,
        "audit_head": gw_audit_head,
        "verify_audit": gw_verify_audit,
        "key_fingerprints": gw_key_fingerprints,
    },
    version=1,
)
