"""Application descriptors.

An application (paper Figure 1) is a set of micro-services connected by
event-bus topics.  The descriptor is pure data; deployment turns it
into running, attested enclaves.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceSpec:
    """One micro-service of an application.

    ``handlers`` maps input topics to in-enclave handler functions;
    ``output_topics`` declares where the handlers may publish;
    ``protected_files`` are secrets baked (encrypted) into the service's
    image -- model parameters, thresholds, credentials.
    """

    name: str
    handlers: dict
    output_topics: tuple = ()
    protected_files: dict = field(default_factory=dict)
    processing_time: float = 0.001

    def topics(self):
        """Every topic this service touches."""
        return sorted(set(self.handlers) | set(self.output_topics))


class ApplicationSpec:
    """A named set of services forming one application."""

    def __init__(self, name, services):
        if not services:
            raise ConfigurationError("an application needs at least one service")
        names = [service.name for service in services]
        if len(set(names)) != len(names):
            raise ConfigurationError("service names must be unique")
        self.name = name
        self.services = list(services)

    def topics(self):
        """All topics any service touches (the bus's vocabulary)."""
        topics = set()
        for service in self.services:
            topics.update(service.topics())
        return sorted(topics)

    def external_input_topics(self):
        """Topics consumed but never produced -- the app's data inputs."""
        consumed, produced = set(), set()
        for service in self.services:
            consumed.update(service.handlers)
            produced.update(service.output_topics)
        return sorted(consumed - produced)

    def external_output_topics(self):
        """Topics produced but never consumed -- the app's results."""
        consumed, produced = set(), set()
        for service in self.services:
            consumed.update(service.handlers)
            produced.update(service.output_topics)
        return sorted(produced - consumed)
