"""End-to-end deployment: from descriptor to running attested services.

The pipeline per service (Figures 1 + 2 combined):

1. **Trusted build**: the SCONE client builds a secure image whose
   enclave code is the micro-service frame, whose protected files are
   the service's secrets, and whose SCF environment carries the AEAD
   keys for the service's topics.  The SCF is registered with the CAS
   under the enclave measurement; the image digest is signed.
2. **Untrusted distribution**: the image travels through the registry;
   the operator side pulls it and verifies the creator's signature.
3. **Placement**: a (round-robin) placement over the SGX hosts; the
   container engine boots the enclave, which is attested by the CAS
   before the SCF -- and with it the topic keys -- is released.
4. **Wiring**: the booted enclave is wrapped as a
   :class:`~repro.microservices.service.MicroService` subscribed to its
   topics; QoS monitoring and the orchestrator are attached.
"""

from repro.errors import ConfigurationError
from repro.crypto.aead import AeadKey
from repro.crypto.keys import KeyHierarchy
from repro.containers.client import SconeClient
from repro.containers.engine import ContainerEngine, Host
from repro.containers.registry import Registry
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.microservices.orchestrator import Orchestrator
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.microservices.service import SERVICE_ENTRY_POINTS, MicroService
from repro.scone.cas import ConfigurationService
from repro.sgx.attestation import AttestationService
from repro.sim.events import Environment

_TOPIC_KEY_PREFIX = "SCONE_TOPIC_KEY_"


class SecureCloudPlatform:
    """A SecureCloud installation: hosts, CAS, registry, bus."""

    def __init__(self, hosts=2, seed=0, bus_latency=0.0005):
        if hosts < 1:
            raise ConfigurationError("need at least one host")
        self.env = Environment()
        self.bus = EventBus(self.env, latency=bus_latency)
        self.attestation = AttestationService()
        self.cas = ConfigurationService(self.attestation, key_bits=512)
        self.registry = Registry()
        self.hosts = [
            Host("host-%02d" % index, seed=seed + index) for index in range(hosts)
        ]
        for host in self.hosts:
            self.attestation.register_platform(
                host.platform.platform_id,
                host.platform.quoting_enclave.public_key,
            )
        self.engine = ContainerEngine(cas=self.cas)
        self.qos = QosMonitor(self.env)
        self.service_registry = ServiceRegistry()
        self._deployments = 0

    def deploy(self, application, key_hierarchy=None):
        """Deploy an :class:`ApplicationSpec`; returns a Deployment."""
        keys = key_hierarchy or KeyHierarchy.generate()
        topic_keys = {
            topic: keys.aead_key("topic", topic)
            for topic in application.topics()
        }
        client = SconeClient(
            self.registry, self.cas,
            key_hierarchy=keys.subhierarchy("images", application.name),
            key_bits=512,
        )
        deployment = Deployment(self, application, topic_keys)
        for index, spec in enumerate(application.services):
            service_topics = spec.topics()
            environment = {
                _TOPIC_KEY_PREFIX + topic: topic_keys[topic].key_bytes.hex()
                for topic in service_topics
            }
            image_name = "%s/%s" % (application.name, spec.name)
            client.build_and_publish(
                image_name,
                SERVICE_ENTRY_POINTS,
                protected_files=spec.protected_files,
                environment=environment,
            )
            image = client.pull_verified(image_name + ":latest")
            host = self.hosts[index % len(self.hosts)]
            container = self.engine.create(image, host)
            # The enclave's topic keys come from its attested SCF.
            scf_environment = container.process.env.environment
            enclave_keys = {
                name[len(_TOPIC_KEY_PREFIX):]: AeadKey(bytes.fromhex(value))
                for name, value in scf_environment.items()
                if name.startswith(_TOPIC_KEY_PREFIX)
            }
            service = MicroService(
                spec.name,
                host.platform,
                self.bus,
                spec.handlers,
                enclave_keys,
                processing_time=spec.processing_time,
                enclave=container.process.enclave,
            )
            self.qos.attach(service)
            self.service_registry.register(service)
            deployment.add_service(service, container)
        deployment.orchestrator = Orchestrator(
            self.env, self.qos, self.service_registry
        )
        self._deployments += 1
        return deployment


class Deployment:
    """A running application."""

    def __init__(self, platform, application, topic_keys):
        self.platform = platform
        self.application = application
        self.topic_keys = topic_keys
        self.services = {}
        self.containers = {}
        self.orchestrator = None
        self._collected = {}

    def add_service(self, service, container):
        """Record one deployed service."""
        self.services[service.name] = service
        self.containers[service.name] = container

    def ingest(self, topic, payload, sender="ingress"):
        """Seal and publish an external input (trusted data source)."""
        key = self.topic_keys.get(topic)
        if key is None:
            raise ConfigurationError("application has no topic %r" % topic)
        sequence = self.platform.bus.next_sequence(topic)
        event = SealedEvent.seal(key, topic, sender, sequence, payload)
        return self.platform.bus.publish(event)

    def collect(self, topic):
        """Subscribe to and decrypt an output topic (trusted consumer).

        Returns the list that accumulates decrypted payloads.
        """
        key = self.topic_keys.get(topic)
        if key is None:
            raise ConfigurationError("application has no topic %r" % topic)
        sink = self._collected.setdefault(topic, [])

        def receive(event):
            sink.append(event.open(key))

        self.platform.bus.subscribe(topic, receive)
        return sink

    def run(self, until=None):
        """Advance the virtual clock (drains the bus)."""
        self.platform.env.run(until=until)

    def stats(self):
        """Per-service handled-event counters."""
        return {
            name: service.stats()["handled"]
            for name, service in self.services.items()
        }

    def stop(self):
        """Stop all containers."""
        for container in self.containers.values():
            container.stop()
