"""The SecureCloud platform facade.

Ties the whole stack together: describe an application as a set of
micro-services (:mod:`~repro.core.application`), then deploy it with
one call (:mod:`~repro.core.deployment`) -- secure image build, publish
to the untrusted registry, signature verification, placement on SGX
hosts, attested boot with SCF delivery, event-bus wiring, QoS
monitoring, and orchestration.
"""

from repro.core.application import ApplicationSpec, ServiceSpec
from repro.core.deployment import Deployment, SecureCloudPlatform

__all__ = [
    "ApplicationSpec",
    "Deployment",
    "SecureCloudPlatform",
    "ServiceSpec",
]
