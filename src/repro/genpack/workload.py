"""Container arrival traces for the scheduling experiments.

Models the "typical data-center workload" mix the GenPack evaluation
uses: a majority of short-lived batch jobs (heavy-tailed lifetimes),
long-running service containers, and a few system containers.  The key
property GenPack exploits is *request inflation*: operators request
more resources than containers use (commonly 1.5-2x in cluster traces),
so packing by observed usage fits more containers per server.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.rng import RandomStream

HOUR = 3600.0


@dataclass(frozen=True)
class ContainerSpec:
    """The immutable description of one container."""

    container_id: str
    arrival: float
    lifetime: float
    cpu_request: float
    mem_request: float
    cpu_usage_mean: float     # true mean usage (cores), <= request
    workload_class: str       # "batch" | "service" | "system"

    @property
    def departure(self):
        return self.arrival + self.lifetime


@dataclass
class RunningContainer:
    """Scheduler-side state of a placed container."""

    spec: ContainerSpec
    server: Optional[object] = None
    generation: str = "nursery"
    placed_at: float = 0.0
    migrations: int = 0
    usage_samples: list = field(default_factory=list)

    @property
    def observed_cpu(self):
        """The monitor's current usage estimate (cores).

        Before any sample arrives the scheduler must assume the full
        request -- exactly why GenPack keeps unprofiled containers in
        the nursery.
        """
        if not self.usage_samples:
            return self.spec.cpu_request
        return sum(self.usage_samples) / len(self.usage_samples)

    @property
    def age_of(self):
        return self.placed_at


class ContainerWorkload:
    """Generates a deterministic container arrival trace."""

    def __init__(self, seed=0, duration=24 * HOUR, arrival_rate_per_hour=40.0,
                 batch_fraction=0.7, service_fraction=0.25,
                 request_inflation=1.8):
        self.rng = RandomStream(seed).child("genpack-workload")
        self.duration = duration
        self.arrival_rate_per_hour = arrival_rate_per_hour
        self.batch_fraction = batch_fraction
        self.service_fraction = service_fraction
        self.request_inflation = request_inflation

    def _class_of(self):
        draw = self.rng.random()
        if draw < self.batch_fraction:
            return "batch"
        if draw < self.batch_fraction + self.service_fraction:
            return "service"
        return "system"

    def _lifetime(self, workload_class):
        if workload_class == "batch":
            # Heavy-tailed: minutes to a few hours.
            return self.rng.bounded_pareto(1.3, 300.0, 6 * HOUR)
        if workload_class == "service":
            # Long-running: several hours to beyond the trace.
            return self.rng.uniform(6 * HOUR, 48 * HOUR)
        return 72 * HOUR  # system containers effectively never leave

    def _sizes(self, workload_class):
        if workload_class == "batch":
            usage = self.rng.uniform(0.5, 3.0)
            memory = self.rng.uniform(1.0, 8.0)
        elif workload_class == "service":
            usage = self.rng.uniform(0.5, 2.0)
            memory = self.rng.uniform(2.0, 12.0)
        else:
            usage = self.rng.uniform(0.2, 1.0)
            memory = self.rng.uniform(0.5, 4.0)
        request = usage * self.request_inflation
        return request, memory, usage

    def generate(self):
        """The full trace, sorted by arrival time."""
        specs = []
        time = 0.0
        index = 0
        rate_per_second = self.arrival_rate_per_hour / HOUR
        while True:
            time += self.rng.expovariate(rate_per_second)
            if time >= self.duration:
                break
            workload_class = self._class_of()
            cpu_request, mem_request, usage = self._sizes(workload_class)
            specs.append(
                ContainerSpec(
                    container_id="ct-%05d" % index,
                    arrival=time,
                    lifetime=self._lifetime(workload_class),
                    cpu_request=round(cpu_request, 2),
                    mem_request=round(mem_request, 2),
                    cpu_usage_mean=round(usage, 2),
                    workload_class=workload_class,
                )
            )
            index += 1
        return specs

    def sample_usage(self, spec, rng=None):
        """One monitoring sample of the container's CPU usage (cores)."""
        stream = rng or self.rng
        noisy = spec.cpu_usage_mean * stream.uniform(0.85, 1.15)
        return max(0.05, min(noisy, spec.cpu_request))
