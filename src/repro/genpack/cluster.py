"""Servers and the cluster they form."""

from repro.errors import CapacityError, SchedulingError


class Server:
    """One physical machine from the scheduler's point of view.

    Capacities are normalised: CPU in cores, memory in GB.  A server
    tracks both *requested* allocations (what containers asked for) and
    *observed* usage (what the monitor measured), because GenPack's
    older generations pack by the latter.
    """

    def __init__(self, name, cpu_capacity=16.0, mem_capacity=64.0):
        self.name = name
        self.cpu_capacity = cpu_capacity
        self.mem_capacity = mem_capacity
        self.powered_on = True
        self.failed = False
        self.generation = None
        self.containers = {}

    # --- aggregate views ---

    @property
    def cpu_requested(self):
        """Sum of CPU requests of resident containers."""
        return sum(c.spec.cpu_request for c in self.containers.values())

    @property
    def mem_requested(self):
        """Sum of memory requests of resident containers."""
        return sum(c.spec.mem_request for c in self.containers.values())

    @property
    def cpu_used(self):
        """Sum of observed CPU usage of resident containers."""
        return sum(c.observed_cpu for c in self.containers.values())

    @property
    def utilization(self):
        """Observed CPU utilisation in [0, 1] (0 when powered off)."""
        if not self.powered_on or self.cpu_capacity == 0:
            return 0.0
        return min(1.0, self.cpu_used / self.cpu_capacity)

    @property
    def is_empty(self):
        return not self.containers

    # --- placement ---

    def fits_requests(self, spec, headroom=1.0):
        """Whether the server can host ``spec`` judged by requests."""
        return (
            self.powered_on
            and self.cpu_requested + spec.cpu_request
            <= self.cpu_capacity * headroom
            and self.mem_requested + spec.mem_request
            <= self.mem_capacity * headroom
        )

    def fits_usage(self, container, target_utilization):
        """Whether the server can host ``container`` judged by usage."""
        return (
            self.powered_on
            and self.cpu_used + container.observed_cpu
            <= self.cpu_capacity * target_utilization
            and self.mem_requested + container.spec.mem_request
            <= self.mem_capacity
        )

    def place(self, container):
        """Bind a running container to this server."""
        if not self.powered_on:
            raise SchedulingError(
                "cannot place on powered-off server %s" % self.name
            )
        if container.spec.container_id in self.containers:
            raise SchedulingError(
                "container %s already on %s"
                % (container.spec.container_id, self.name)
            )
        self.containers[container.spec.container_id] = container
        container.server = self

    def evict(self, container):
        """Unbind a container (departure or migration)."""
        removed = self.containers.pop(container.spec.container_id, None)
        if removed is None:
            raise SchedulingError(
                "container %s not on server %s"
                % (container.spec.container_id, self.name)
            )

    def power_off(self):
        """Turn the server off; only legal when empty."""
        if self.containers:
            raise SchedulingError(
                "cannot power off %s with %d containers"
                % (self.name, len(self.containers))
            )
        self.powered_on = False

    def power_on(self):
        """Bring the server back."""
        if self.failed:
            raise SchedulingError("cannot power on failed server %s" % self.name)
        self.powered_on = True

    def crash(self):
        """Hardware failure: drops power with residents still placed.

        Returns the orphaned containers so the scheduler can reschedule
        them elsewhere; the server stays unusable until repaired.
        """
        orphans = list(self.containers.values())
        self.containers.clear()
        for container in orphans:
            container.server = None
        self.powered_on = False
        self.failed = True
        return orphans

    def repair(self):
        """Bring a failed server back into the schedulable pool (off)."""
        self.failed = False
        self.powered_on = False


class Cluster:
    """A fixed fleet of servers."""

    def __init__(self, servers):
        if not servers:
            raise CapacityError("a cluster needs at least one server")
        names = [server.name for server in servers]
        if len(set(names)) != len(names):
            raise CapacityError("server names must be unique")
        self.servers = list(servers)

    @classmethod
    def homogeneous(cls, count, cpu_capacity=16.0, mem_capacity=64.0):
        """``count`` identical servers named srv-000..."""
        return cls(
            [
                Server("srv-%03d" % i, cpu_capacity, mem_capacity)
                for i in range(count)
            ]
        )

    def __len__(self):
        return len(self.servers)

    @property
    def powered_on(self):
        """Servers currently on."""
        return [server for server in self.servers if server.powered_on]

    @property
    def powered_off(self):
        """Servers currently off."""
        return [server for server in self.servers if not server.powered_on]

    @property
    def total_cpu_capacity(self):
        return sum(server.cpu_capacity for server in self.servers)

    def running_containers(self):
        """All containers across all servers."""
        result = []
        for server in self.servers:
            result.extend(server.containers.values())
        return result

    def check_invariants(self):
        """No server over capacity; each container on exactly one server."""
        seen = set()
        for server in self.servers:
            if server.mem_requested > server.mem_capacity + 1e-9:
                raise SchedulingError(
                    "server %s memory over-committed" % server.name
                )
            for container_id, container in server.containers.items():
                if container_id in seen:
                    raise SchedulingError(
                        "container %s placed twice" % container_id
                    )
                if container.server is not server:
                    raise SchedulingError(
                        "container %s back-reference broken" % container_id
                    )
                seen.add(container_id)
        return True
