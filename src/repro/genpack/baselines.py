"""Baseline schedulers GenPack is compared against.

- :class:`SpreadScheduler`: the common default (Docker Swarm "spread",
  Kubernetes' default flavour): balance containers across *all*
  servers, which are always powered on.
- :class:`RandomScheduler`: uniform random placement over servers that
  fit; all servers on.
- :class:`FirstFitScheduler`: request-based bin packing with power
  management -- the strongest non-generational baseline.  It lacks
  GenPack's two advantages: usage-based packing (so request inflation
  wastes capacity) and generational segregation (so long-lived
  containers pin servers that short batch jobs keep half-empty).
"""

from repro.errors import SchedulingError
from repro.sim.rng import RandomStream


class _BaselineBase:
    def __init__(self, cluster):
        self.cluster = cluster
        self.migrations = 0
        self.rejected = 0

    def on_departure(self, container, time):
        if container.server is not None:
            container.server.evict(container)

    def on_tick(self, time):
        """Baselines do nothing periodically (no consolidation)."""

    def on_server_failure(self, server, time):
        """Reschedule a crashed server's residents via normal arrival."""
        stranded = []
        for container in server.crash():
            try:
                self.on_arrival(container, time)
                self.migrations += 1
            except SchedulingError:
                stranded.append(container)
        return stranded

    def _fail(self, container):
        self.rejected += 1
        raise SchedulingError(
            "no capacity for %s" % container.spec.container_id
        )


class SpreadScheduler(_BaselineBase):
    """Least-loaded placement; every server always on."""

    name = "spread"

    def on_arrival(self, container, time):
        candidates = [
            server
            for server in self.cluster.powered_on
            if server.fits_requests(container.spec)
        ]
        if not candidates:
            self._fail(container)
        server = min(candidates, key=lambda s: s.cpu_requested)
        server.place(container)
        container.placed_at = time
        return server


class RandomScheduler(_BaselineBase):
    """Uniform random placement; every server always on."""

    name = "random"

    def __init__(self, cluster, seed=0):
        super().__init__(cluster)
        self.rng = RandomStream(seed).child("random-scheduler")

    def on_arrival(self, container, time):
        candidates = [
            server
            for server in self.cluster.powered_on
            if server.fits_requests(container.spec)
        ]
        if not candidates:
            self._fail(container)
        server = self.rng.choice(candidates)
        server.place(container)
        container.placed_at = time
        return server


class FirstFitScheduler(_BaselineBase):
    """Request-based bin packing with power-off of empty servers."""

    name = "first-fit"

    def __init__(self, cluster, keep_on=1):
        super().__init__(cluster)
        self.keep_on = keep_on
        for index, server in enumerate(cluster.servers):
            if index >= keep_on and server.is_empty:
                server.power_off()

    def on_arrival(self, container, time):
        for server in self.cluster.powered_on:
            if server.fits_requests(container.spec):
                server.place(container)
                container.placed_at = time
                return server
        for server in self.cluster.powered_off:
            if server.failed:
                continue
            server.power_on()
            if server.fits_requests(container.spec):
                server.place(container)
                container.placed_at = time
                return server
            server.power_off()
        self._fail(container)

    def on_tick(self, time):
        """Power off servers that have drained empty."""
        on = self.cluster.powered_on
        for server in on[self.keep_on:]:
            if server.is_empty:
                server.power_off()
