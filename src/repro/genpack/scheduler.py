"""The GenPack scheduler.

Server generations (named after generational GC):

- **nursery**: receives every new container.  Requirements are unknown,
  so placement is by *request* with generous headroom; the monitor
  profiles residents.
- **young**: profiled containers are migrated here and packed
  first-fit-decreasing by *observed usage* with a safety margin.
- **old**: containers that survive ``promotion_age`` (long-running
  services, system containers) are packed tightest -- their profile is
  stable.

A periodic consolidation pass drains under-utilised young/old servers
(migrating residents into their generation's other servers) and powers
empty servers off; placement pressure powers servers back on.
"""

from repro.errors import SchedulingError

NURSERY = "nursery"
YOUNG = "young"
OLD = "old"


class GenPackScheduler:
    """Generation-aware, monitoring-driven placement."""

    name = "genpack"

    def __init__(self, cluster, monitor, nursery_fraction=0.1,
                 promotion_age=3600.0, young_target_utilization=0.8,
                 old_target_utilization=0.9, drain_threshold=0.5,
                 nursery_headroom=1.0, min_nursery_on=1):
        self.cluster = cluster
        self.monitor = monitor
        self.promotion_age = promotion_age
        self.young_target = young_target_utilization
        self.old_target = old_target_utilization
        self.drain_threshold = drain_threshold
        self.nursery_headroom = nursery_headroom
        self.min_nursery_on = min_nursery_on
        self.migrations = 0
        self.rejected = 0

        nursery_count = max(1, int(len(cluster) * nursery_fraction))
        for index, server in enumerate(cluster.servers):
            if index < nursery_count:
                server.generation = NURSERY
                # Keep only a minimal nursery powered; wake on demand.
                if index >= min_nursery_on and server.is_empty:
                    server.power_off()
            else:
                # Non-nursery servers start powered off; consolidation
                # wakes them on demand.
                server.generation = YOUNG if index % 2 else OLD
                if server.is_empty:
                    server.power_off()

    # --- helpers ---

    def _generation_servers(self, generation, powered_only=True):
        return [
            server
            for server in self.cluster.servers
            if server.generation == generation
            and (server.powered_on or not powered_only)
        ]

    def _wake_server(self, generation):
        for server in self.cluster.servers:
            if (
                server.generation == generation
                and not server.powered_on
                and not server.failed
            ):
                server.power_on()
                return server
        return None

    def _place_by_usage(self, container, generation, target):
        candidates = sorted(
            self._generation_servers(generation),
            key=lambda server: server.cpu_used,
            reverse=True,  # fill the fullest first (FFD flavour)
        )
        for server in candidates:
            if server.fits_usage(container, target):
                return server
        return self._wake_server(generation)

    # --- scheduler interface ---

    def on_arrival(self, container, time):
        """Place a new container in the nursery (fullest-first)."""
        candidates = sorted(
            self._generation_servers(NURSERY),
            key=lambda server: server.cpu_requested,
            reverse=True,
        )
        for server in candidates:
            if server.fits_requests(container.spec, self.nursery_headroom):
                server.place(container)
                container.generation = NURSERY
                container.placed_at = time
                return server
        server = self._wake_server(NURSERY)
        if server is None:
            # Nursery exhausted: borrow capacity, preferring servers
            # that are already powered on over waking another one.
            powered = sorted(
                (
                    candidate
                    for candidate in self.cluster.powered_on
                    if candidate.generation != NURSERY
                    and candidate.fits_requests(container.spec)
                ),
                key=lambda candidate: candidate.cpu_requested,
                reverse=True,
            )
            if powered:
                server = powered[0]
            else:
                server = self._wake_server(YOUNG) or self._wake_server(OLD)
            if server is None:
                self.rejected += 1
                raise SchedulingError(
                    "no capacity for %s" % container.spec.container_id
                )
        server.place(container)
        container.generation = NURSERY
        container.placed_at = time
        return server

    def on_departure(self, container, time):
        """Remove a finished container."""
        if container.server is not None:
            container.server.evict(container)

    def on_server_failure(self, server, time):
        """Reschedule every resident of a crashed server.

        Profiled containers go back into their generation by observed
        usage; unprofiled ones restart in the nursery.  Returns the
        containers that could not be re-placed (capacity exhausted).
        """
        orphans = server.crash()
        stranded = []
        for container in orphans:
            generation = container.generation
            if generation == NURSERY:
                try:
                    self.on_arrival(container, time)
                except SchedulingError:
                    stranded.append(container)
                continue
            target = self.young_target if generation == YOUNG else self.old_target
            destination = self._place_by_usage(container, generation, target)
            if destination is None:
                try:
                    self.on_arrival(container, time)
                except SchedulingError:
                    stranded.append(container)
                continue
            destination.place(container)
            container.migrations += 1
            self.migrations += 1
        return stranded

    def _promote(self, container, generation, target, time):
        destination = self._place_by_usage(container, generation, target)
        if destination is None or destination is container.server:
            return False
        container.server.evict(container)
        destination.place(container)
        container.generation = generation
        container.migrations += 1
        self.migrations += 1
        return True

    def on_tick(self, time):
        """Promotion + consolidation pass (runs on the monitor period)."""
        # 1. Promote profiled nursery containers to the young generation.
        for server in self._generation_servers(NURSERY):
            for container in list(server.containers.values()):
                if self.monitor.is_profiled(container):
                    self._promote(container, YOUNG, self.young_target, time)
        # 2. Promote aged young containers to the old generation.
        for server in self._generation_servers(YOUNG):
            for container in list(server.containers.values()):
                if time - container.placed_at >= self.promotion_age:
                    self._promote(container, OLD, self.old_target, time)
        # 3. Drain under-utilised young/old servers.
        for generation, target in ((YOUNG, self.young_target),
                                   (OLD, self.old_target)):
            servers = self._generation_servers(generation)
            for server in servers:
                if server.is_empty or server.utilization >= self.drain_threshold:
                    continue
                residents = list(server.containers.values())
                moved_all = True
                for container in residents:
                    others = [
                        candidate
                        for candidate in self._generation_servers(generation)
                        if candidate is not server
                        and candidate.fits_usage(container, target)
                    ]
                    if not others:
                        moved_all = False
                        continue
                    destination = max(others, key=lambda s: s.cpu_used)
                    server.evict(container)
                    destination.place(container)
                    container.migrations += 1
                    self.migrations += 1
                if moved_all and server.is_empty:
                    server.power_off()
        # 4. Power off empty servers (keeping a minimal warm nursery).
        nursery_on = 0
        for server in self.cluster.powered_on:
            if server.generation == NURSERY:
                if server.is_empty and nursery_on >= self.min_nursery_on:
                    server.power_off()
                else:
                    nursery_on += 1
            elif server.is_empty:
                server.power_off()
