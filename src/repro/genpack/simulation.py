"""The event-driven driver for scheduling experiments.

Replays a container trace against a scheduler over a cluster, sampling
the monitor on its period and integrating energy between events.  The
timeline is piecewise constant, so charging the pre-event power draw at
every event boundary is exact.
"""

import heapq
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.genpack.energy import EnergyMeter
from repro.genpack.monitor import ResourceMonitor
from repro.genpack.workload import RunningContainer

_ARRIVAL, _DEPARTURE, _TICK, _FAILURE = 0, 1, 2, 3


@dataclass
class SimulationResult:
    """Everything a scheduling run produced."""

    scheduler_name: str
    energy_kwh: float
    average_servers_on: float
    migrations: int
    rejected: int
    completed: int
    duration: float
    servers_on_timeline: list = field(default_factory=list)
    failures: int = 0
    stranded: int = 0

    def energy_savings_vs(self, other):
        """Fractional energy savings of this run versus ``other``."""
        if other.energy_kwh == 0:
            return 0.0
        return 1.0 - self.energy_kwh / other.energy_kwh


class ClusterSimulation:
    """Replays one trace against one scheduler."""

    def __init__(self, cluster, scheduler, workload, trace=None,
                 monitor=None, power_model=None, tick_period=300.0,
                 failures=()):
        """``failures`` is an iterable of ``(time, server_name)`` crash
        injections; orphaned containers are rescheduled by the
        scheduler's failure handler."""
        self.cluster = cluster
        self.scheduler = scheduler
        self.workload = workload
        self.trace = trace if trace is not None else workload.generate()
        self.monitor = monitor or ResourceMonitor(workload, period=tick_period)
        self.meter = EnergyMeter(cluster, power_model)
        self.tick_period = tick_period
        self.failures = sorted(failures)

    def run(self, check_invariants_every=0):
        """Execute the trace; returns a :class:`SimulationResult`."""
        duration = self.workload.duration
        events = []
        for order, spec in enumerate(self.trace):
            heapq.heappush(events, (spec.arrival, _ARRIVAL, order, spec))
        tick_index = 1
        while tick_index * self.tick_period < duration:
            heapq.heappush(
                events, (tick_index * self.tick_period, _TICK, tick_index, None)
            )
            tick_index += 1
        for order, (when, server_name) in enumerate(self.failures):
            heapq.heappush(events, (when, _FAILURE, order, server_name))

        live = {}
        completed = 0
        stranded_total = 0
        timeline = []
        event_count = 0
        while events:
            time, kind, order, payload = heapq.heappop(events)
            self.meter.advance_to(time)
            if kind == _ARRIVAL:
                container = RunningContainer(spec=payload, placed_at=time)
                try:
                    self.scheduler.on_arrival(container, time)
                except SchedulingError:
                    continue
                live[payload.container_id] = container
                departure = min(payload.departure, duration)
                heapq.heappush(events, (departure, _DEPARTURE, order, payload))
            elif kind == _DEPARTURE:
                container = live.pop(payload.container_id, None)
                if container is not None and container.server is not None:
                    self.scheduler.on_departure(container, time)
                    completed += 1
            elif kind == _FAILURE:
                server = next(
                    (s for s in self.cluster.servers if s.name == payload),
                    None,
                )
                if server is not None and not server.failed:
                    stranded = self.scheduler.on_server_failure(server, time)
                    for container in stranded:
                        live.pop(container.spec.container_id, None)
                        stranded_total += 1
            else:  # tick
                self.monitor.sample_all(live.values())
                self.scheduler.on_tick(time)
                timeline.append((time, len(self.cluster.powered_on)))
            event_count += 1
            if check_invariants_every and event_count % check_invariants_every == 0:
                self.cluster.check_invariants()

        self.meter.advance_to(duration)
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            energy_kwh=self.meter.energy_kwh,
            average_servers_on=self.meter.average_servers_on(),
            migrations=self.scheduler.migrations,
            rejected=self.scheduler.rejected,
            completed=completed,
            duration=duration,
            servers_on_timeline=timeline,
            failures=len(self.failures),
            stranded=stranded_total,
        )


def compare_schedulers(make_cluster, make_schedulers, workload, trace=None,
                       tick_period=300.0):
    """Run the same trace under several schedulers on fresh clusters.

    ``make_schedulers`` maps a fresh cluster (and monitor) to a list of
    scheduler instances is awkward to express; instead it is a list of
    factory callables, each receiving ``(cluster, monitor)``.
    """
    if trace is None:
        trace = workload.generate()
    results = {}
    for factory in make_schedulers:
        cluster = make_cluster()
        monitor = ResourceMonitor(workload, period=tick_period)
        scheduler = factory(cluster, monitor)
        simulation = ClusterSimulation(
            cluster, scheduler, workload, trace=trace, monitor=monitor,
            tick_period=tick_period,
        )
        results[scheduler.name] = simulation.run()
    return results
