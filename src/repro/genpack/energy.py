"""Server power model and cluster energy metering.

The linear-with-utilisation model is the standard abstraction for this
class of experiment (SPECpower curves are near-linear for the relevant
range): a powered-on server draws ``idle_watts`` plus utilisation times
the dynamic range; a powered-off server draws a small standby wattage.
GenPack's savings come from needing fewer powered-on, better-utilised
servers -- idle power is the enemy, and this model captures exactly
that.
"""

from repro.errors import ConfigurationError


class PowerModel:
    """Watts drawn by one server as a function of state."""

    def __init__(self, idle_watts=100.0, peak_watts=200.0, standby_watts=5.0):
        if not 0 <= standby_watts <= idle_watts <= peak_watts:
            raise ConfigurationError(
                "need standby <= idle <= peak wattage"
            )
        self.idle_watts = idle_watts
        self.peak_watts = peak_watts
        self.standby_watts = standby_watts

    def power(self, server):
        """Instantaneous draw of ``server`` in watts."""
        if not server.powered_on:
            return self.standby_watts
        dynamic = self.peak_watts - self.idle_watts
        return self.idle_watts + dynamic * server.utilization


class EnergyMeter:
    """Integrates cluster power over (virtual) time.

    Call :meth:`advance_to` at every event *before* mutating cluster
    state; the meter charges the elapsed interval at the pre-event
    power draw, which is exact for piecewise-constant utilisation.
    """

    def __init__(self, cluster, power_model=None):
        self.cluster = cluster
        self.power_model = power_model or PowerModel()
        self.energy_joules = 0.0
        self.server_on_seconds = 0.0
        self._last_time = 0.0

    @property
    def now(self):
        return self._last_time

    @property
    def energy_kwh(self):
        """Accumulated energy in kilowatt-hours."""
        return self.energy_joules / 3.6e6

    def advance_to(self, time):
        """Account for the interval since the previous event."""
        if time < self._last_time:
            raise ConfigurationError(
                "energy meter moved backwards: %s < %s" % (time, self._last_time)
            )
        dt = time - self._last_time
        if dt > 0:
            watts = sum(
                self.power_model.power(server) for server in self.cluster.servers
            )
            self.energy_joules += watts * dt
            self.server_on_seconds += len(self.cluster.powered_on) * dt
            self._last_time = time

    def average_servers_on(self):
        """Mean number of powered-on servers over the metered window."""
        if self._last_time == 0:
            return len(self.cluster.powered_on)
        return self.server_on_seconds / self._last_time
