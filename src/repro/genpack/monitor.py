"""Runtime monitoring of container resource usage.

GenPack "combines runtime monitoring of system containers to learn
their requirements and properties" with the generational scheduler.
The monitor periodically samples each running container's CPU usage;
the rolling estimate (:attr:`RunningContainer.observed_cpu`) is what
the young/old generations pack by.
"""


class ResourceMonitor:
    """Samples running containers on a fixed period."""

    def __init__(self, workload, period=300.0, window=12, seed_stream=None):
        self.workload = workload
        self.period = period
        self.window = window
        self.samples_taken = 0
        self._rng = seed_stream

    def sample_all(self, containers):
        """Record one usage sample for every running container."""
        for container in containers:
            sample = self.workload.sample_usage(container.spec, rng=self._rng)
            container.usage_samples.append(sample)
            if len(container.usage_samples) > self.window:
                del container.usage_samples[0]
            self.samples_taken += 1

    def is_profiled(self, container, minimum_samples=2):
        """Whether we have enough samples to trust the usage estimate."""
        return len(container.usage_samples) >= minimum_samples


class RequestOnlyMonitor(ResourceMonitor):
    """Ablation: monitoring disabled.

    Reports each container's *request* as its observed usage, so a
    generational scheduler on top of it still gets power management and
    generational segregation but no usage-based packing.  Isolates how
    much of GenPack's saving comes from runtime monitoring.
    """

    def sample_all(self, containers):
        for container in containers:
            container.usage_samples.append(container.spec.cpu_request)
            if len(container.usage_samples) > self.window:
                del container.usage_samples[0]
            self.samples_taken += 1
