"""GenPack: a generational scheduler for cloud data centers [11].

GenPack partitions servers into *generations*, borrowing from
generational garbage collection: containers start in the **nursery**
where their resource profile is unknown and monitored; profiled
survivors are migrated to the **young** generation and packed by
*observed* usage rather than (over-provisioned) requests; long-running
containers settle in the **old** generation with the tightest packing.
Consolidation powers off empty servers.  Section VI of the SecureCloud
paper reports up to 23% energy savings for typical data-center
workloads -- the E3 benchmark regenerates that comparison against
spread/random/first-fit baselines.

- :mod:`~repro.genpack.cluster` -- servers and the cluster.
- :mod:`~repro.genpack.workload` -- container arrival traces.
- :mod:`~repro.genpack.monitor` -- runtime usage monitoring.
- :mod:`~repro.genpack.energy` -- the power model and energy meter.
- :mod:`~repro.genpack.scheduler` -- GenPack itself.
- :mod:`~repro.genpack.baselines` -- spread / random / first-fit.
- :mod:`~repro.genpack.simulation` -- the event-driven driver.
"""

from repro.genpack.baselines import (
    FirstFitScheduler,
    RandomScheduler,
    SpreadScheduler,
)
from repro.genpack.cluster import Cluster, Server
from repro.genpack.energy import EnergyMeter, PowerModel
from repro.genpack.monitor import RequestOnlyMonitor, ResourceMonitor
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import ClusterSimulation, SimulationResult
from repro.genpack.workload import ContainerSpec, ContainerWorkload

__all__ = [
    "Cluster",
    "ClusterSimulation",
    "ContainerSpec",
    "ContainerWorkload",
    "EnergyMeter",
    "FirstFitScheduler",
    "GenPackScheduler",
    "PowerModel",
    "RandomScheduler",
    "RequestOnlyMonitor",
    "ResourceMonitor",
    "Server",
    "SimulationResult",
    "SpreadScheduler",
]
