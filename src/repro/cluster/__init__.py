"""Node fault domains under the sharded SCBR plane.

Binds shard enclaves to simulated machines: per-node EPC capacity and
SGX heterogeneity (:mod:`repro.cluster.nodes`), correlated node
failure detection on top of the phi-accrual shard monitor
(:mod:`repro.cluster.health`), and the node-bound plane driver with
mass recovery and live shard migration (:mod:`repro.cluster.plane`).
"""

from repro.cluster.health import (
    NodeDetection,
    NodeFailureDetector,
    NodeHealthPolicy,
)
from repro.cluster.nodes import (
    ClusterNode,
    NodeSpec,
    NodeTopology,
    SHARD_CPU_REQUEST,
    SHARD_MEM_REQUEST,
)
from repro.cluster.plane import (
    DEFAULT_NODE_EPC_WATERMARK,
    MigrationTicket,
    NodeBoundScbrRouter,
)

__all__ = [
    "ClusterNode",
    "DEFAULT_NODE_EPC_WATERMARK",
    "MigrationTicket",
    "NodeBoundScbrRouter",
    "NodeDetection",
    "NodeFailureDetector",
    "NodeHealthPolicy",
    "NodeSpec",
    "NodeTopology",
    "SHARD_CPU_REQUEST",
    "SHARD_MEM_REQUEST",
]
