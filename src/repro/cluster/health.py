"""Node-level failure detection from correlated shard suspicions.

The phi-accrual :class:`~repro.scbr.health.ShardHealthMonitor` judges
one shard at a time; a machine failure kills *every* shard on the node
at once, and treating those as independent episodes both wastes work
(N sequential single-shard recoveries, each rediscovering the same
dead machine) and mis-places the replacements (the per-shard path
would happily respawn onto the platform that just died).  The
:class:`NodeFailureDetector` sits on top of the shard monitor and
infers "node down" exactly when the per-shard suspicions *correlate*:
every shard homed on the node is declared down by the phi detector,
and the detections fall within one ``correlation_window`` of each
other.  A single slow shard on a healthy node never clears that bar --
its neighbours keep beating -- so the node verdict separates machine
death from process death with no extra probing.

Like the shard monitor, verdicts latch: one :class:`NodeDetection` per
outage episode, reset when the node's shards are re-registered after
mass recovery.
"""

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NodeHealthPolicy:
    """How shard suspicions combine into a node verdict."""

    # Detections of a node's shards must all land within this span of
    # virtual seconds to count as one correlated machine failure.
    correlation_window: float = 0.01
    # Fraction of the node's homed shards that must be suspected; 1.0
    # (all of them) is the conservative default -- any surviving beat
    # vetoes the machine-death theory.
    quorum: float = 1.0

    def __post_init__(self):
        if self.correlation_window <= 0.0:
            raise ConfigurationError("correlation_window must be positive")
        if not 0.0 < self.quorum <= 1.0:
            raise ConfigurationError("quorum must be in (0, 1]")


@dataclass
class NodeDetection:
    """One node-down verdict."""

    node: str
    detected_at: float
    shard_ids: Tuple[int, ...]
    onset: Optional[float] = None
    shard_detections: list = field(default_factory=list)

    @property
    def detection_latency(self):
        """Seconds from (externally recorded) onset to the verdict."""
        if self.onset is None:
            return None
        return self.detected_at - self.onset


class NodeFailureDetector:
    """Correlates shard-down verdicts into node-down verdicts.

    The caller (the node-bound plane driver) keeps the shard→node
    assignment current via :meth:`assign`/:meth:`unassign`, feeds the
    shard monitor as usual, and calls :meth:`poll` after each heartbeat
    round.  The detector never probes anything itself: it reads the
    monitor's latched detections, so its verdicts inherit the phi
    detector's determinism.
    """

    def __init__(self, monitor, policy=None):
        self.monitor = monitor
        self.policy = policy or NodeHealthPolicy()
        self.detections = []
        self._assignment = {}
        self._down = set()
        self._onsets = {}

    # -- bookkeeping ----------------------------------------------------

    def assign(self, shard_id, node_name):
        """Record that ``shard_id`` is homed on ``node_name``."""
        self._assignment[shard_id] = node_name

    def unassign(self, shard_id):
        """Drop a shard from the assignment map (retired or moving)."""
        self._assignment.pop(shard_id, None)

    def shards_on(self, node_name):
        """Shard ids currently assigned to ``node_name`` (sorted)."""
        return sorted(
            shard_id for shard_id, name in self._assignment.items()
            if name == node_name
        )

    def record_onset(self, node_name, time):
        """Fault injectors call this so node detection latency is
        measurable (mirrors ``ShardHealthMonitor.record_onset``)."""
        self._onsets[node_name] = time

    def reset(self, node_name):
        """Close ``node_name``'s outage episode (mass recovery done)."""
        self._down.discard(node_name)
        self._onsets.pop(node_name, None)

    def down(self):
        """Node names currently declared down."""
        return sorted(self._down)

    # -- the verdict ----------------------------------------------------

    def poll(self, now=None):
        """Nodes newly declared down by correlated shard suspicions.

        A node is down when at least ``quorum`` of its assigned shards
        are latched down by the shard monitor *and* the earliest and
        latest of those detections are within ``correlation_window``.
        Each node episode yields its name exactly once until
        :meth:`reset`.
        """
        if now is None:
            now = self.monitor.env.now
        down_shards = set(self.monitor.down())
        latest = {}
        for detection in self.monitor.detections:
            if detection.shard_id in down_shards:
                latest[detection.shard_id] = detection
        newly_down = []
        nodes = sorted(set(self._assignment.values()))
        for node_name in nodes:
            if node_name in self._down:
                continue
            assigned = self.shards_on(node_name)
            if not assigned:
                continue
            suspected = [
                latest[shard_id] for shard_id in assigned
                if shard_id in latest
            ]
            required = max(1, math.ceil(len(assigned) * self.policy.quorum))
            if len(suspected) < required:
                continue
            times = [d.detected_at for d in suspected]
            if max(times) - min(times) > self.policy.correlation_window:
                continue
            self._down.add(node_name)
            verdict = NodeDetection(
                node=node_name,
                detected_at=max(times),
                shard_ids=tuple(assigned),
                onset=self._onsets.get(node_name),
                shard_detections=list(suspected),
            )
            self.detections.append(verdict)
            newly_down.append(node_name)
        return newly_down

    def detection_latencies(self):
        """Onset-to-verdict latencies for verdicts with onsets."""
        return [
            detection.detection_latency
            for detection in self.detections
            if detection.detection_latency is not None
        ]
