"""Simulated cluster nodes: the machines under the sharded plane.

Until now every shard enclave floated in a nodeless void -- its
"machine" was a private :class:`~repro.sgx.platform.SgxPlatform` that
nothing else shared and nothing could kill.  This module binds enclaves
to *nodes*: one :class:`ClusterNode` couples a scheduling-plane
:class:`~repro.genpack.cluster.Server` (CPU/memory capacity, crash and
repair life cycle) with an SGX platform whose EPC capacity is the
node's own (heterogeneous clusters mix EPC sizes, and non-SGX nodes
carry no platform at all, as in *SGX-Aware Container Orchestration for
Heterogeneous Clusters*).  Several shard enclaves on one node share
that node's EPC -- which is exactly why a machine failure is a
*correlated* loss of every partition it hosted, and why EPC pressure
is a per-node, not per-shard, quantity.

A :class:`NodeTopology` is the fleet: it wraps the nodes' servers in a
:class:`~repro.genpack.cluster.Cluster` (so the GenPack invariants
keep holding) and answers the placement-plane questions -- which nodes
are SGX-capable, reachable, under their EPC watermark, and how many
plane shards each already hosts (anti-affinity).
"""

from repro.errors import CapacityError, ConfigurationError, SchedulingError
from repro.genpack.cluster import Cluster, Server
from repro.genpack.workload import ContainerSpec, RunningContainer
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.platform import SgxPlatform

# Scheduling-plane footprint of one shard enclave on its node; the
# interesting capacity is the EPC, but the server ledger keeps the
# GenPack invariants (no double placement, no over-commit) checkable.
SHARD_CPU_REQUEST = 1.0
SHARD_MEM_REQUEST = 0.5


class NodeSpec:
    """The immutable description of one node.

    ``epc_capacity`` (bytes) sizes the node's EPC -- heterogeneous
    fleets mix 128 MiB parts with smaller ones; ``sgx=False`` models a
    legacy machine that can host untrusted services but never a shard
    enclave.
    """

    def __init__(self, name, sgx=True, epc_capacity=None,
                 cpu_capacity=16.0, mem_capacity=64.0, seed=None):
        self.name = name
        self.sgx = sgx
        self.epc_capacity = epc_capacity
        self.cpu_capacity = cpu_capacity
        self.mem_capacity = mem_capacity
        self.seed = seed


class ClusterNode:
    """One machine: a schedulable server plus (optionally) an SGX platform.

    The server side carries the GenPack life cycle (``crash`` /
    ``repair``, container placement); the platform side carries the
    clock, the shared LLC/EPC, and the quoting enclave every shard on
    this node attests through.  Destroying the node destroys both:
    every resident enclave is torn down (its EPC pages EREMOVEd via
    ``release_all``/``release_owner``) and the server drops power with
    its containers orphaned.
    """

    def __init__(self, spec, costs=DEFAULT_COSTS, quoting_key_bits=512):
        self.spec = spec
        self.name = spec.name
        self.server = Server(spec.name, spec.cpu_capacity, spec.mem_capacity)
        if spec.sgx:
            node_costs = costs
            if spec.epc_capacity is not None:
                node_costs = costs.scaled(epc_capacity=spec.epc_capacity)
            self.platform = SgxPlatform(
                costs=node_costs, platform_id="node/%s" % spec.name,
                seed=spec.seed, quoting_key_bits=quoting_key_bits,
            )
        else:
            self.platform = None
        self.shard_ids = set()
        self._containers = {}
        self.partitioned_until = None
        self.crashes = 0

    # -- capability and liveness ---------------------------------------

    @property
    def sgx(self):
        """Whether this node can host enclaves at all."""
        return self.platform is not None

    @property
    def alive(self):
        """Whether the machine is up (crashed nodes are not)."""
        return not self.server.failed

    def reachable(self, now=None):
        """Up *and* not cut off by a network partition at ``now``.

        A partitioned node's enclaves keep running -- their state is
        intact -- but no heartbeat, match request, or migration batch
        crosses the partition until it heals.
        """
        if not self.alive:
            return False
        if self.partitioned_until is None:
            return True
        if now is None:
            return False
        if now >= self.partitioned_until:
            self.partitioned_until = None
            return True
        return False

    # -- EPC accounting -------------------------------------------------

    @property
    def epc_usable(self):
        """Application-usable EPC bytes on this node (0 without SGX)."""
        if self.platform is None:
            return 0
        return self.platform.costs.epc_usable

    @property
    def epc_resident_bytes(self):
        """Bytes resident across every live enclave on this node."""
        if self.platform is None:
            return 0
        return sum(
            enclave.memory.resident_bytes
            for enclave in self.platform.enclaves
            if not enclave.destroyed
        )

    def epc_utilization(self):
        """Resident fraction of the usable EPC, in [0, inf)."""
        usable = self.epc_usable
        if not usable:
            return 0.0
        return self.epc_resident_bytes / usable

    def epc_watermark_exceeded(self, watermark):
        """Whether resident enclave state crossed ``watermark`` of EPC."""
        if self.platform is None:
            return False
        return self.epc_resident_bytes >= watermark * self.epc_usable

    # -- shard residency ------------------------------------------------

    def bind_shard(self, shard_id):
        """Home shard ``shard_id`` here (server container + ledger)."""
        if not self.sgx:
            raise SchedulingError(
                "node %s has no SGX support; cannot host shard %d"
                % (self.name, shard_id)
            )
        if not self.alive:
            raise SchedulingError(
                "node %s is down; cannot host shard %d"
                % (self.name, shard_id)
            )
        container = RunningContainer(spec=ContainerSpec(
            container_id="shard-%d" % shard_id,
            arrival=0.0, lifetime=float("inf"),
            cpu_request=SHARD_CPU_REQUEST, mem_request=SHARD_MEM_REQUEST,
            cpu_usage_mean=SHARD_CPU_REQUEST, workload_class="service",
        ))
        self.server.place(container)
        self._containers[shard_id] = container
        self.shard_ids.add(shard_id)

    def unbind_shard(self, shard_id):
        """Drop shard ``shard_id`` from this node's ledger."""
        self.shard_ids.discard(shard_id)
        container = self._containers.pop(shard_id, None)
        if container is not None and container.server is self.server:
            self.server.evict(container)

    # -- failure life cycle ---------------------------------------------

    def crash(self):
        """Machine failure: every enclave dies, the server drops power.

        Destroying the enclaves releases their simulated memory
        (``release_all`` EREMOVEs their EPC pages through
        ``release_owner``), so a later repair brings back an *empty*
        platform, not a haunted one.  Returns the shard ids that went
        dark.
        """
        dark = sorted(self.shard_ids)
        if self.platform is not None:
            for enclave in self.platform.enclaves:
                if not enclave.destroyed:
                    enclave.destroy()
        self.server.crash()
        self._containers.clear()
        self.shard_ids.clear()
        self.partitioned_until = None
        self.crashes += 1
        return dark

    def repair(self):
        """Return the machine to the schedulable pool (powered off)."""
        self.server.repair()
        self.server.power_on()

    def partition(self, until):
        """Cut this node off the network until virtual time ``until``."""
        if self.partitioned_until is None or until > self.partitioned_until:
            self.partitioned_until = until

    def heal_partition(self):
        """Reconnect the node immediately."""
        self.partitioned_until = None


class NodeTopology:
    """The fleet of nodes a plane's shards are bound to."""

    def __init__(self, nodes):
        if not nodes:
            raise CapacityError("a topology needs at least one node")
        self.nodes = list(nodes)
        self._by_name = {node.name: node for node in self.nodes}
        if len(self._by_name) != len(self.nodes):
            raise ConfigurationError("node names must be unique")
        self.cluster = Cluster([node.server for node in self.nodes])

    @classmethod
    def build(cls, count, seed=0, epc_capacities=None, sgx_flags=None,
              costs=DEFAULT_COSTS, quoting_key_bits=512):
        """``count`` nodes named node-0..; per-node EPC/SGX overrides.

        ``epc_capacities``/``sgx_flags`` are optional sequences indexed
        by node position; a ``None`` entry keeps the default.  Seeds
        derive deterministically from ``seed`` so two same-seed
        topologies attest and seal identically.
        """
        nodes = []
        for index in range(count):
            epc = None
            if epc_capacities is not None and index < len(epc_capacities):
                epc = epc_capacities[index]
            sgx = True
            if sgx_flags is not None and index < len(sgx_flags):
                sgx = bool(sgx_flags[index])
            nodes.append(ClusterNode(
                NodeSpec(
                    "node-%d" % index, sgx=sgx, epc_capacity=epc,
                    seed=1000 * (seed + 1) + index,
                ),
                costs=costs, quoting_key_bits=quoting_key_bits,
            ))
        return cls(nodes)

    def __len__(self):
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, name):
        """Look a node up by name."""
        node = self._by_name.get(name)
        if node is None:
            raise ConfigurationError("no node %r in the topology" % (name,))
        return node

    def sgx_nodes(self):
        """Nodes that can host enclaves."""
        return [node for node in self.nodes if node.sgx]

    def placement_candidates(self, now=None, exclude=()):
        """SGX nodes that are alive and reachable, minus ``exclude``."""
        return [
            node for node in self.nodes
            if node.sgx and node.reachable(now) and node not in exclude
            and node.name not in exclude
        ]

    def shard_spread(self):
        """Per-node shard counts (max-min is the anti-affinity skew)."""
        return {node.name: len(node.shard_ids) for node in self.nodes}

    def check_invariants(self):
        """GenPack server invariants plus a disjoint shard ledger."""
        self.cluster.check_invariants()
        seen = {}
        for node in self.nodes:
            for shard_id in node.shard_ids:
                if shard_id in seen:
                    raise ConfigurationError(
                        "shard %d homed on both %s and %s"
                        % (shard_id, seen[shard_id], node.name)
                    )
                seen[shard_id] = node.name
            if node.shard_ids and not node.sgx:
                raise ConfigurationError(
                    "non-SGX node %s claims shards %r"
                    % (node.name, sorted(node.shard_ids))
                )
        return True
