"""The node-bound sharded SCBR plane: shards live on machines.

:class:`NodeBoundScbrRouter` is the :class:`ShardedScbrRouter` with its
shard platforms drawn from a :class:`~repro.cluster.nodes.NodeTopology`
instead of a nodeless factory.  Three things change, all of them the
robustness story the base plane could not tell:

* **Placement** is anti-affinity- and EPC-watermark-aware
  (:meth:`ShardPlanner.choose_node`): spawns, splits, and recoveries
  all land on the reachable SGX node hosting the fewest plane shards,
  preferring nodes under their EPC watermark -- so one machine failure
  darkens as few partitions as possible and no node's shared EPC is
  quietly overcommitted.

* **Node failure detection** infers "machine down" from *correlated*
  phi-accrual suspicions (:class:`NodeFailureDetector`): when every
  shard homed on a node is declared down within one correlation
  window, the health loop mass-recovers the whole node -- each shard
  respawned on a survivor through the usual attested re-join +
  snapshot restore + log replay, the dead node's EPC pages already
  EREMOVEd by its enclaves' teardown.

* **Live migration** relieves EPC pressure without an outage:
  :meth:`begin_migration` spawns and attested-joins a replacement on
  the destination node while the source keeps serving matches; the
  cutover (:meth:`complete_migration`) evacuates *every* subtree as
  one sealed batch (``extract_subtrees`` under the shard's
  ``evacuate`` ECALL), loads it into the replacement, and atomically
  swaps partition residency.  Coverage-tracked publish makes the
  cutover loss-free by construction: a publication parked before the
  swap is answered by the still-full source, one parked after by the
  fully-loaded replacement -- there is no instant at which shard
  ``i``'s authenticated match blob can silently not arrive.

Network partitions are modeled at the node: a partitioned node's
enclaves keep running, but no heartbeat, match request, or migration
batch crosses until the partition heals -- so suspicion accrues
exactly as for a crash, and conservative recovery (respawn elsewhere,
destroy the old side when reachable again) handles both without
split-brain.
"""

from dataclasses import dataclass

from repro.cluster.health import NodeFailureDetector
from repro.cluster.nodes import NodeTopology
from repro.errors import (
    ConfigurationError,
    EnclaveLostError,
    SchedulingError,
)
from repro.scbr.sharding import ShardedScbrRouter, ShardPlanner
from repro.sim.clock import cycles_to_seconds
from repro.telemetry import default_registry

# A node whose resident enclave state crosses this fraction of its
# usable EPC stops attracting new shards and becomes a migration
# source; mirrors the per-shard EpcWatermarkPolicy default.
DEFAULT_NODE_EPC_WATERMARK = 0.85

# "Evacuate everything" sentinel: extract_subtrees keeps detaching
# roots until the moved bytes reach the target, so any target above
# the partition size moves the whole forest.
_EVACUATE_ALL_BYTES = 1 << 62


@dataclass
class MigrationTicket:
    """An in-flight live migration: source still serving, destination
    attested, joined, and waiting for the sealed evacuation batch."""

    shard_id: int
    source: object          # ShardEnclave still serving matches
    replacement: object     # ShardEnclave on the destination node
    source_node: object
    dest_node: object
    started_at: object      # env.now at begin (None without an env)
    source_clock_start: int
    dest_clock_start: int


class NodeBoundScbrRouter(ShardedScbrRouter):
    """A sharded SCBR plane whose shard enclaves live on cluster nodes.

    Construction takes a :class:`NodeTopology` in place of the base
    plane's ``shard_platform_factory``: every spawn (initial bring-up,
    runtime split, crash recovery, migration) asks the topology for a
    destination via :meth:`ShardPlanner.choose_node` and binds the
    shard to that node's server ledger, so GenPack's cluster
    invariants keep holding underneath the enclave plane.
    """

    name = "scbr-node-plane"

    def __init__(self, platform, topology, node_health_policy=None,
                 epc_node_watermark=DEFAULT_NODE_EPC_WATERMARK,
                 **kwargs):
        if not isinstance(topology, NodeTopology):
            raise ConfigurationError(
                "NodeBoundScbrRouter needs a NodeTopology"
            )
        if not topology.sgx_nodes():
            raise SchedulingError(
                "the topology has no SGX nodes; nowhere to run shards"
            )
        if not 0.0 < epc_node_watermark <= 1.0:
            raise ConfigurationError(
                "epc_node_watermark must be in (0, 1]"
            )
        self.topology = topology
        self.epc_node_watermark = epc_node_watermark
        self._node_of = {}      # shard_id -> ClusterNode (residency)
        self._staging = {}      # shard_id -> dest node mid-migration
        self.node_detector = None  # created after super() (needs monitor)
        self.node_failures = 0
        self.node_partitions = 0
        self.migrations_completed = 0
        self.migration_episodes = []
        self.node_recovery_episodes = []
        registry = default_registry()
        self._tel_node_failures = registry.counter("cluster.node_failures")
        self._tel_node_recoveries = registry.counter(
            "cluster.node_recoveries"
        )
        self._tel_migrations = registry.counter("cluster.migrations")
        super().__init__(platform, self._platform_for_shard, **kwargs)
        if self.monitor is not None:
            self.node_detector = NodeFailureDetector(
                self.monitor, node_health_policy
            )
            # Replay the assignments made while super() spawned the
            # initial shards (the detector did not exist yet).
            for shard_id, node in self._node_of.items():
                self.node_detector.assign(shard_id, node.name)

    # -- node-aware placement ------------------------------------------

    def _now(self):
        return self.env.now if self.env is not None else None

    def _choose_node(self, exclude=()):
        """Anti-affinity + EPC-watermark placement over reachable nodes."""
        candidates = self.topology.placement_candidates(
            self._now(), exclude=exclude
        )
        if not candidates:
            raise SchedulingError(
                "no reachable SGX node can host a shard enclave"
            )
        return candidates[ShardPlanner.choose_node(
            [len(node.shard_ids) for node in candidates],
            [node.epc_utilization() for node in candidates],
            [node.epc_watermark_exceeded(self.epc_node_watermark)
             for node in candidates],
        )]

    def _platform_for_shard(self, shard_id):
        """The factory the base plane calls for every spawn.

        A staged migration destination wins (residency flips only at
        cutover); otherwise the planner picks a node and the shard is
        re-homed there immediately -- unbinding it from wherever it
        lived before, which on recovery is the crashed (or partitioned)
        node.
        """
        staged = self._staging.pop(shard_id, None)
        if staged is not None:
            return staged.platform
        node = self._choose_node()
        previous = self._node_of.get(shard_id)
        if previous is not None and previous is not node:
            previous.unbind_shard(shard_id)
        if shard_id not in node.shard_ids:
            node.bind_shard(shard_id)
        self._node_of[shard_id] = node
        if self.node_detector is not None:
            self.node_detector.assign(shard_id, node.name)
        return node.platform

    def node_of(self, shard_id):
        """The node currently serving shard ``shard_id``."""
        node = self._node_of.get(shard_id)
        if node is None:
            raise ConfigurationError(
                "shard %r is not homed on any node" % (shard_id,)
            )
        return node

    # -- reachability (network partitions) ------------------------------

    def _shard_reachable(self, shard):
        node = self._node_of.get(shard.shard_id)
        if node is None:
            return True
        return node.reachable(self._now())

    def _heal_dark_shards(self):
        # Widen "dark" to unreachable-but-live: a partitioned shard is
        # conservatively respawned on a reachable node (recovery
        # destroys the old side first -- fencing, not split-brain).
        dark = [
            shard.shard_id for shard in self.shards
            if shard.enclave.destroyed or not self._shard_reachable(shard)
        ]
        if dark:
            self.recover_shards(dark)

    def partition_node(self, name, duration):
        """Cut node ``name`` off the network for ``duration`` virtual
        seconds (the chaos/fault-schedule hook)."""
        if self.env is None:
            raise ConfigurationError(
                "network partitions need an Environment (env=...)"
            )
        node = self.topology.node(name)
        node.partition(self.env.now + duration)
        self.node_partitions += 1
        return node.partitioned_until

    # -- node failure and mass recovery ---------------------------------

    def fail_node(self, name):
        """Machine failure: every shard on the node dies at once.

        Each homed shard goes through :meth:`fail_shard` (latching its
        onset for the detectors), then the node itself crashes -- its
        server drops power and every resident enclave's EPC pages are
        released.  Returns the shard ids that went dark.
        """
        node = self.topology.node(name)
        onset = self._now()
        dark = [
            shard_id for shard_id in sorted(self._node_of)
            if self._node_of[shard_id] is node
        ]
        for shard_id in dark:
            self.fail_shard(shard_id)
        node.crash()
        self.node_failures += 1
        self._tel_node_failures.inc()
        if self.node_detector is not None and onset is not None:
            self.node_detector.record_onset(name, onset)
        return dark

    def recover_node(self, name):
        """Mass-recover every shard the dead node was serving.

        The whole displaced set respawns through ONE batched
        provisioning round (:meth:`recover_shards`) -- a single
        coordinator quote commits to every replacement's join offer,
        and machines holding live resumption tickets skip quote
        verification entirely -- then each shard restores its snapshot
        and replays its log as usual.  The node-aware factory places
        every replacement on a surviving node (the dead machine fails
        ``placement_candidates``).  Returns the recovered shard ids.
        """
        node = self.topology.node(name)
        shard_ids = [
            shard_id for shard_id in sorted(self._node_of)
            if self._node_of[shard_id] is node
        ]
        before = len(self.recovery_episodes)
        self.recover_shards(shard_ids)
        episodes = self.recovery_episodes[before:]
        episode = {
            "node": name,
            "shard_ids": shard_ids,
            "onset": min(
                (e["onset"] for e in episodes if e["onset"] is not None),
                default=None,
            ),
            "recovery_seconds": sum(
                e["recovery_seconds"] for e in episodes
            ),
        }
        self.node_recovery_episodes.append(episode)
        self._tel_node_recoveries.inc()
        if self.node_detector is not None:
            self.node_detector.reset(name)
        if self.orchestrator is not None and shard_ids:
            self.orchestrator.report_recovery(
                "%s/%s" % (self.name, name), "node-recovery",
                episode["recovery_seconds"], onset=episode["onset"],
            )
        return shard_ids

    def start_health(self, duration, auto_recover=True):
        """Node-aware health loop.

        Each tick probes heartbeats as usual, then asks the node
        detector for correlated verdicts *before* falling back to
        per-shard recovery: a machine death is healed as one mass
        recovery, and only down shards not explained by a node verdict
        are recovered individually (process death on a healthy node).
        """
        if self.monitor is None:
            raise ConfigurationError(
                "the health loop needs an Environment (env=...)"
            )
        period = self.monitor.policy.heartbeat_period

        def tick():
            down_shards = self.probe_heartbeats()
            handled = set()
            if self.node_detector is not None:
                for node_name in self.node_detector.poll():
                    if auto_recover:
                        handled.update(self.recover_node(node_name))
            if auto_recover:
                for shard_id in down_shards:
                    if shard_id not in handled:
                        self.recover_shard(shard_id)

        beats = int(duration / period)
        for index in range(1, beats + 1):
            self.env.call_at(self.env.now + index * period, tick)
        return beats

    # -- live migration -------------------------------------------------

    def begin_migration(self, shard_id, node_name=None):
        """Stage a live migration of shard ``shard_id``.

        Spawns a replacement enclave on the destination node (chosen by
        the planner unless ``node_name`` pins it) and walks it through
        the full attested DH join, so it holds the plane key before a
        single record moves.  The source keeps serving matches -- the
        plane's membership, residency ledgers, and heartbeat targets
        are untouched until :meth:`complete_migration` cuts over.
        """
        source = self._shard_by_id(shard_id)
        if source.enclave.destroyed:
            raise EnclaveLostError(
                "shard %d is dark; recover it, do not migrate it"
                % shard_id
            )
        source_node = self.node_of(shard_id)
        if node_name is not None:
            dest = self.topology.node(node_name)
            if not dest.sgx:
                raise SchedulingError(
                    "node %s has no SGX support" % node_name
                )
            if not dest.reachable(self._now()):
                raise SchedulingError(
                    "node %s is unreachable" % node_name
                )
        else:
            dest = self._choose_node(exclude=(source_node,))
        if dest is source_node:
            raise SchedulingError(
                "migration needs a destination other than %s"
                % source_node.name
            )
        source_clock_start = source.platform.clock.now
        dest_clock_start = dest.platform.clock.now
        self._staging[shard_id] = dest
        try:
            replacement = self._spawn_shard_enclave(shard_id)
        finally:
            self._staging.pop(shard_id, None)
        return MigrationTicket(
            shard_id=shard_id, source=source, replacement=replacement,
            source_node=source_node, dest_node=dest,
            started_at=self._now(),
            source_clock_start=source_clock_start,
            dest_clock_start=dest_clock_start,
        )

    def complete_migration(self, ticket):
        """Cut a staged migration over; returns the migration episode.

        The source evacuates its *entire* forest as one plane-sealed
        batch (``extract_subtrees`` with an everything target), the
        replacement loads it, and partition residency swaps atomically:
        membership list, home map, node ledgers, detector assignment.
        The retired source is destroyed (EPC pages EREMOVEd) and the
        replacement immediately re-snapshotted, so the next crash
        replays from the post-migration state.

        If the source died mid-migration the staged replacement is
        abandoned and the shard recovered from its snapshot instead --
        the caller still ends with a serving partition.
        """
        shard_id = ticket.shard_id
        source, replacement = ticket.source, ticket.replacement
        if replacement.enclave.destroyed:
            raise EnclaveLostError(
                "migration destination for shard %d died; begin again"
                % shard_id
            )
        if source.enclave.destroyed:
            replacement.enclave.destroy()
            self.recover_shard(shard_id)
            return {
                "shard_id": shard_id, "completed": False,
                "fallback": "snapshot-recovery",
            }
        moved_ids, batch = source.enclave.ecall(
            "evacuate", _EVACUATE_ALL_BYTES
        )
        replacement.enclave.ecall("load", batch)
        replacement.database_bytes = source.database_bytes
        # Swap the partition: same shard id, new machine.
        self.shards[self.shards.index(source)] = replacement
        self._retired.append(source)
        source.enclave.destroy()
        for subscription_id, home in list(self._home.items()):
            if home is source:
                self._home[subscription_id] = replacement
        ticket.source_node.unbind_shard(shard_id)
        if shard_id not in ticket.dest_node.shard_ids:
            ticket.dest_node.bind_shard(shard_id)
        self._node_of[shard_id] = ticket.dest_node
        if self.node_detector is not None:
            self.node_detector.assign(shard_id, ticket.dest_node.name)
        self._snapshot(replacement)
        migration_cycles = (
            source.platform.clock.now - ticket.source_clock_start
        ) + (
            replacement.platform.clock.now - ticket.dest_clock_start
        )
        self.migrated += len(moved_ids)
        self.migrations_completed += 1
        self._tel_migrations.inc()
        episode = {
            "shard_id": shard_id,
            "completed": True,
            "moved": len(moved_ids),
            "source_node": ticket.source_node.name,
            "dest_node": ticket.dest_node.name,
            "migration_cycles": migration_cycles,
            "migration_seconds": cycles_to_seconds(migration_cycles),
        }
        self.migration_episodes.append(episode)
        return episode

    def relieve_epc_pressure(self, watermark=None):
        """One rebalancing pass: migrate the largest shard off every
        node over its EPC watermark, if an under-watermark destination
        exists.  Returns the completed migration episodes."""
        if watermark is None:
            watermark = self.epc_node_watermark
        episodes = []
        for node in self.topology.sgx_nodes():
            if not node.epc_watermark_exceeded(watermark):
                continue
            local = [
                shard_id for shard_id in sorted(node.shard_ids)
                if self._node_of.get(shard_id) is node
            ]
            if not local:
                continue
            candidates = [
                other for other
                in self.topology.placement_candidates(
                    self._now(), exclude=(node,)
                )
                if not other.epc_watermark_exceeded(watermark)
            ]
            if not candidates:
                continue
            heaviest = max(
                local,
                key=lambda sid: self._shard_by_id(sid).database_bytes,
            )
            ticket = self.begin_migration(heaviest)
            episodes.append(self.complete_migration(ticket))
        return episodes

    # -- observability --------------------------------------------------

    def node_detection_latencies(self):
        """Onset-to-verdict latencies of the node detector's verdicts."""
        if self.node_detector is None:
            return []
        return self.node_detector.detection_latencies()

    def node_recovery_latencies(self):
        """Virtual seconds each node mass-recovery took."""
        return [
            episode["recovery_seconds"]
            for episode in self.node_recovery_episodes
        ]

    def stats(self):
        plane = super().stats()
        plane["nodes"] = {
            "count": len(self.topology),
            "sgx": len(self.topology.sgx_nodes()),
            "node_failures": self.node_failures,
            "node_recoveries": len(self.node_recovery_episodes),
            "node_partitions": self.node_partitions,
            "migrations": self.migrations_completed,
            "shard_spread": self.topology.shard_spread(),
            "epc_utilization": {
                node.name: node.epc_utilization()
                for node in self.topology.sgx_nodes()
            },
        }
        return plane

    def check_invariants(self):
        """Plane invariants, topology invariants, and their agreement:
        every live shard runs on the platform of the node its ledger
        says it lives on."""
        super().check_invariants()
        self.topology.check_invariants()
        for shard in self.shards:
            if shard.enclave.destroyed:
                continue
            node = self._node_of.get(shard.shard_id)
            if node is None:
                raise ConfigurationError(
                    "live shard %d is homed on no node" % shard.shard_id
                )
            if shard.platform is not node.platform:
                raise ConfigurationError(
                    "shard %d runs on %r but is ledgered on %s"
                    % (shard.shard_id, shard.platform.platform_id,
                       node.name)
                )
            if shard.shard_id not in node.shard_ids:
                raise ConfigurationError(
                    "node %s does not ledger its shard %d"
                    % (node.name, shard.shard_id)
                )
        return True
