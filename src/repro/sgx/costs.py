"""The SGX cycle cost model.

All constants are CPU cycles on a 2.6 GHz core (SCONE's testbed
frequency).  Provenance:

========================  =========  =========================================
Quantity                  Cycles     Source
========================  =========  =========================================
LLC hit                   40         typical Haswell/Broadwell Xeon
DRAM access (native)      200        typical
MEE read (enclave LLC     1,200      SGX Explained Sec. 6; SCONE reports
miss served from EPC)                5.5-7.5x read penalty past the LLC
EPC page fault            40,000     SGX Explained / Eleos: 12k-40k cycles
(OS-serviced eviction +              per EPC page swapped (encrypt + evict +
reload of a 4 KiB page)              fault + reload + decrypt + verify)
Enclave transition        8,000      SCONE: ~3 us round trip incl. TLB flush
(EENTER/EEXIT pair)
========================  =========  =========================================

The EPC holds 128 MiB of physical memory, of which roughly a quarter is
consumed by the Enclave Page Cache Map, version arrays, and SGX runtime
structures, leaving ~93.5 MiB for application pages.  This reservation
is why the paper's Figure 3 shows performance degrading *before* the
128 MiB mark.
"""

from dataclasses import dataclass

MIB = 1024 * 1024


@dataclass(frozen=True)
class MemoryCosts:
    """Cycle costs and geometry of the simulated memory hierarchy."""

    llc_hit_cycles: int = 40
    dram_cycles: int = 200
    mee_read_cycles: int = 1_200
    page_fault_cycles: int = 40_000
    transition_cycles: int = 8_000
    line_size: int = 64
    page_size: int = 4_096
    llc_capacity: int = 8 * MIB
    epc_capacity: int = 128 * MIB
    epc_metadata_fraction: float = 0.27

    @property
    def epc_usable(self):
        """EPC bytes available to application pages."""
        return int(self.epc_capacity * (1.0 - self.epc_metadata_fraction))

    def scaled(self, **overrides):
        """A copy of this cost model with selected fields replaced."""
        fields = {
            "llc_hit_cycles": self.llc_hit_cycles,
            "dram_cycles": self.dram_cycles,
            "mee_read_cycles": self.mee_read_cycles,
            "page_fault_cycles": self.page_fault_cycles,
            "transition_cycles": self.transition_cycles,
            "line_size": self.line_size,
            "page_size": self.page_size,
            "llc_capacity": self.llc_capacity,
            "epc_capacity": self.epc_capacity,
            "epc_metadata_fraction": self.epc_metadata_fraction,
        }
        fields.update(overrides)
        return MemoryCosts(**fields)


DEFAULT_COSTS = MemoryCosts()
