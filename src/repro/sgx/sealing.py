"""Sealing: persisting enclave secrets across restarts.

The sealing key is derived from a platform-resident fuse secret plus an
identity component chosen by policy:

- ``SealingPolicy.MRENCLAVE``: only the exact same code on the same
  platform can unseal (measurement-bound);
- ``SealingPolicy.MRSIGNER``: any enclave by the same author on the same
  platform can unseal (used for upgradable services).

Sealed blobs are AEAD ciphertexts whose associated data carries the
policy, so a blob sealed under one policy cannot be opened under the
other.
"""

import enum
from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey, Ciphertext
from repro.crypto.kdf import hkdf


class SealingPolicy(enum.Enum):
    """Which identity component binds the sealing key."""

    MRENCLAVE = "mrenclave"
    MRSIGNER = "mrsigner"


@dataclass(frozen=True)
class SealedBlob:
    """A sealed secret: policy label plus AEAD ciphertext."""

    policy: SealingPolicy
    ciphertext: bytes

    def to_bytes(self):
        """Serialise for storage on the untrusted file system."""
        label = self.policy.value.encode("ascii")
        return len(label).to_bytes(2, "big") + label + self.ciphertext

    @classmethod
    def from_bytes(cls, raw):
        """Parse a blob serialised by :meth:`to_bytes`."""
        if len(raw) < 2:
            raise IntegrityError("truncated sealed blob")
        label_length = int.from_bytes(raw[:2], "big")
        label = raw[2 : 2 + label_length].decode("ascii")
        try:
            policy = SealingPolicy(label)
        except ValueError as exc:
            raise IntegrityError("unknown sealing policy %r" % label) from exc
        return cls(policy=policy, ciphertext=raw[2 + label_length :])


def derive_sealing_key(platform_secret, identity, policy):
    """The AEAD key for (platform, identity, policy)."""
    info = b"sgx-seal|" + policy.value.encode("ascii") + b"|" + identity.encode("ascii")
    return AeadKey(hkdf(platform_secret, info))


def seal(platform_secret, measurement, signer, data, policy=SealingPolicy.MRENCLAVE):
    """Seal ``data`` under the requested policy."""
    identity = measurement if policy is SealingPolicy.MRENCLAVE else signer
    key = derive_sealing_key(platform_secret, identity, policy)
    ciphertext = key.encrypt(data, aad=policy.value.encode("ascii"))
    return SealedBlob(policy=policy, ciphertext=ciphertext.to_bytes())


def unseal(platform_secret, measurement, signer, blob):
    """Recover sealed data; raises :class:`IntegrityError` if the caller's
    identity or platform does not match the sealer's."""
    identity = measurement if blob.policy is SealingPolicy.MRENCLAVE else signer
    key = derive_sealing_key(platform_secret, identity, blob.policy)
    return key.decrypt(
        Ciphertext.from_bytes(blob.ciphertext),
        aad=blob.policy.value.encode("ascii"),
    )
