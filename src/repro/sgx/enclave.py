"""Enclaves: measured code with ECALL/OCALL transitions.

An :class:`Enclave` is created from :class:`EnclaveCode` -- a named set
of entry points whose *measurement* is a hash over the code identity
(entry-point bytecode) and initial configuration, mirroring MRENCLAVE:
identical code and config produce identical measurements; any change
produces a different one.

Calling into the enclave (:meth:`Enclave.ecall`) charges an enclave
transition, runs the entry point with an :class:`EnclaveContext` (the
in-enclave world: protected memory, state, sealing, reports, OCALLs),
and charges the exit transition.  Code outside never sees the context
or the in-enclave state, which is how the reproduction enforces the
paper's "plaintext only inside the processor" property.
"""

import itertools

from repro.errors import EnclaveError, EnclaveLostError
from repro.crypto.primitives import sha256, sha256_hex
from repro.sgx.memory import SimulatedMemory
from repro.telemetry import default_registry

_enclave_ids = itertools.count(1)


class EnclaveCode:
    """A named, measurable bundle of enclave entry points."""

    def __init__(self, name, entry_points, config=b"", version=1):
        if not entry_points:
            raise EnclaveError("enclave code needs at least one entry point")
        self.name = name
        self.entry_points = dict(entry_points)
        self.config = bytes(config)
        self.version = version
        self._identity = self._compute_identity()

    def _compute_identity(self):
        pieces = [
            b"enclave-code",
            self.name.encode("utf-8"),
            str(self.version).encode("ascii"),
            self.config,
        ]
        for entry_name in sorted(self.entry_points):
            function = self.entry_points[entry_name]
            code = getattr(function, "__code__", None)
            if code is not None:
                # Bytecode alone is not enough: two functions differing
                # only in constants or referenced names share co_code.
                body = (
                    code.co_code
                    + repr(code.co_consts).encode("utf-8")
                    + repr(code.co_names).encode("utf-8")
                )
            else:
                body = repr(function).encode("utf-8")
            pieces.append(entry_name.encode("utf-8"))
            pieces.append(body)
        return sha256(b"|".join(pieces))

    @property
    def measurement(self):
        """Hex MRENCLAVE-like identity of this code bundle."""
        return self._identity.hex()

    def with_config(self, config):
        """The same code under different initial configuration."""
        return EnclaveCode(self.name, self.entry_points, config, self.version)


class Report:
    """A local attestation report: measurement bound to report data."""

    def __init__(self, measurement, report_data, enclave_id):
        self.measurement = measurement
        self.report_data = bytes(report_data)
        self.enclave_id = enclave_id

    def digest(self):
        """Canonical bytes of the report (signed by the quoting enclave)."""
        return (
            self.measurement.encode("ascii")
            + b"|"
            + str(self.enclave_id).encode("ascii")
            + b"|"
            + self.report_data
        )


class EnclaveContext:
    """What entry-point code sees while executing inside the enclave.

    - :attr:`memory` -- protected memory (EPC-backed, costs charged);
    - :attr:`state` -- a dict persisted across ECALLs (the enclave heap);
    - :meth:`ocall` -- call out to untrusted code (charges a transition);
    - :meth:`report` -- produce a local attestation report;
    - :meth:`seal`/:meth:`unseal` -- persist secrets via platform keys.
    """

    def __init__(self, enclave):
        self._enclave = enclave
        self.memory = enclave.memory
        self.state = enclave._state
        self.clock = enclave.platform.clock

    @property
    def measurement(self):
        """This enclave's own measurement."""
        return self._enclave.measurement

    def compute(self, cycles):
        """Charge pure computation cycles."""
        self.memory.compute(cycles)

    def ocall(self, function, *args, **kwargs):
        """Leave the enclave to run untrusted ``function``, then re-enter."""
        costs = self._enclave.platform.costs
        self._enclave._tel_ocalls.inc()
        self._enclave._tel_transitions.inc(2)
        self.clock.charge(costs.transition_cycles)
        try:
            return function(*args, **kwargs)
        finally:
            self.clock.charge(costs.transition_cycles)

    def report(self, report_data=b""):
        """A local attestation report over ``report_data``."""
        return Report(self._enclave.measurement, report_data, self._enclave.enclave_id)

    def seal(self, data, policy=None):
        """Seal ``data`` to this enclave's identity (see sealing module)."""
        return self._enclave.platform.seal(self._enclave, data, policy=policy)

    def unseal(self, blob):
        """Recover data sealed by this enclave identity on this platform."""
        return self._enclave.platform.unseal(self._enclave, blob)


class Enclave:
    """A loaded enclave instance on an :class:`~repro.sgx.platform.SgxPlatform`."""

    def __init__(self, platform, code, name=None):
        self.platform = platform
        self.code = code
        self.name = name or code.name
        self.enclave_id = next(_enclave_ids)
        self.memory = SimulatedMemory(
            clock=platform.clock,
            costs=platform.costs,
            enclave=True,
            epc=platform.epc,
            llc=platform.llc,
            name="enclave-%d" % self.enclave_id,
        )
        self._state = {}
        self._destroyed = False
        self._ecall_count = 0
        # Telemetry handles resolve once here; with the default no-op
        # registry the per-ecall cost is one no-op call per instrument.
        registry = default_registry()
        self._tel_ecalls = registry.counter("sgx.ecalls", enclave=self.name)
        self._tel_transitions = registry.counter(
            "sgx.transitions", enclave=self.name
        )
        self._tel_ocalls = registry.counter("sgx.ocalls", enclave=self.name)

    @property
    def measurement(self):
        """The enclave's MRENCLAVE-like identity (hex)."""
        return self.code.measurement

    @property
    def ecall_count(self):
        """Number of ECALLs served (for transition accounting)."""
        return self._ecall_count

    def ecall(self, entry_point, *args, **kwargs):
        """Enter the enclave and run ``entry_point`` with the context.

        Charges an EENTER/EEXIT transition pair around the call.
        """
        if self._destroyed:
            # Transient from the caller's view: the same measured code
            # can be reloaded (or a standby promoted) and the call
            # replayed -- this is what failover paths catch.
            raise EnclaveLostError("enclave %s has been destroyed" % self.name)
        function = self.code.entry_points.get(entry_point)
        if function is None:
            raise EnclaveError(
                "enclave %s has no entry point %r" % (self.name, entry_point)
            )
        self.platform.clock.charge(self.platform.costs.transition_cycles)
        self._ecall_count += 1
        self._tel_ecalls.inc()
        self._tel_transitions.inc(2)
        context = EnclaveContext(self)
        try:
            return function(context, *args, **kwargs)
        finally:
            self.platform.clock.charge(self.platform.costs.transition_cycles)

    @property
    def destroyed(self):
        """True once the enclave has been torn down."""
        return self._destroyed

    def destroy(self):
        """Tear the enclave down; its protected state becomes unreachable.

        Also releases the enclave's simulated memory: the OS reclaims a
        dead enclave's EPC pages (EREMOVE) and its cache lines stop
        being resident, so survivors on the platform no longer pay
        paging pressure for state that can never be touched again.
        """
        self._destroyed = True
        self._state.clear()
        self.memory.release_all()

    def identity_summary(self):
        """A loggable description (no secrets)."""
        return {
            "name": self.name,
            "enclave_id": self.enclave_id,
            "measurement": self.measurement,
            "heap_bytes": self.memory.allocated_bytes,
        }


def measure_code(entry_points, name="anonymous", config=b"", version=1):
    """Convenience: the measurement an :class:`EnclaveCode` would have."""
    return EnclaveCode(name, entry_points, config, version).measurement


def code_fingerprint(data):
    """Hex digest helper used by loaders to name code blobs."""
    return sha256_hex(data)
