"""The simulated memory hierarchy: LLC, DRAM, and the EPC.

Running the *same* algorithm against two :class:`SimulatedMemory`
instances -- one native, one enclave-backed -- reproduces the paper's
Figure 3.  The cost difference is not hand-tuned; it emerges from the
mechanism:

- every access touches last-level-cache blocks (LRU); a hit costs
  ``llc_hit_cycles`` per line, a native miss costs ``dram_cycles``;
- inside an enclave an LLC miss is served through the Memory Encryption
  Engine (``mee_read_cycles``: decrypt + integrity + freshness check);
- enclave pages live in the EPC (LRU, capacity ``epc_usable``); touching
  a non-resident page costs ``page_fault_cycles`` (the OS evicts and
  reloads an encrypted page) before the line access proceeds.

Addresses are virtual byte offsets handed out by a bump allocator, so
spatial locality (several records per page, several fields per line) is
modelled faithfully.
"""

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import CapacityError
from repro.sgx.costs import DEFAULT_COSTS


@dataclass
class MemoryStats:
    """Counters accumulated by a :class:`SimulatedMemory`."""

    accesses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    page_faults: int = 0
    cycles_memory: int = 0
    cycles_compute: int = 0

    def snapshot(self):
        """An independent copy of the current counters."""
        return MemoryStats(
            accesses=self.accesses,
            llc_hits=self.llc_hits,
            llc_misses=self.llc_misses,
            page_faults=self.page_faults,
            cycles_memory=self.cycles_memory,
            cycles_compute=self.cycles_compute,
        )

    def delta(self, earlier):
        """Counters accumulated since the ``earlier`` snapshot."""
        return MemoryStats(
            accesses=self.accesses - earlier.accesses,
            llc_hits=self.llc_hits - earlier.llc_hits,
            llc_misses=self.llc_misses - earlier.llc_misses,
            page_faults=self.page_faults - earlier.page_faults,
            cycles_memory=self.cycles_memory - earlier.cycles_memory,
            cycles_compute=self.cycles_compute - earlier.cycles_compute,
        )


class _LruSet:
    """An LRU-evicting set of keys with fixed capacity."""

    def __init__(self, capacity):
        if capacity < 1:
            raise CapacityError("LRU capacity must be >= 1")
        self.capacity = capacity
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def touch(self, key):
        """Record an access; returns True on hit, False on miss.

        On a miss the key is inserted, evicting the least recently used
        entry if the set is full.
        """
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return True
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
        entries[key] = None
        return False

    def discard(self, key):
        """Remove ``key`` if present."""
        self._entries.pop(key, None)

    def keys(self):
        """Snapshot of resident keys in LRU order (oldest first)."""
        return list(self._entries)

    def discard_owner(self, owner):
        """Drop every resident ``(owner, id)`` key; returns the count.

        Keys in this simulator are ``(memory name, page/line id)``
        tuples, so an enclave tearing down can purge its whole resident
        set in one pass over the (capacity-bounded) LRU instead of
        walking its entire address space.
        """
        victims = [key for key in self._entries if key[0] == owner]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def clear(self):
        """Drop all entries (e.g. on enclave teardown)."""
        self._entries.clear()


class LlcModel:
    """Last-level cache tracked as an LRU over cache lines."""

    def __init__(self, costs=DEFAULT_COSTS):
        self.costs = costs
        self._lines = _LruSet(max(1, costs.llc_capacity // costs.line_size))

    def touch_line(self, line_id):
        """Access one cache line; True if it hit."""
        return self._lines.touch(line_id)

    def discard_line(self, line_id):
        """Drop one line if resident (freed memory stops occupying LLC)."""
        self._lines.discard(line_id)

    def release_owner(self, owner):
        """Drop every resident line belonging to ``owner`` (a memory
        name); returns how many lines were released."""
        return self._lines.discard_owner(owner)

    def flush(self):
        """Empty the cache."""
        self._lines.clear()


class EpcModel:
    """The Enclave Page Cache: an LRU over resident 4 KiB enclave pages.

    Shared by all enclaves on a platform (as on real hardware).  The
    usable capacity excludes the fraction reserved for SGX metadata, so
    paging begins before an application working set reaches the nominal
    128 MiB -- exactly the effect visible in the paper's Figure 3.
    """

    def __init__(self, costs=DEFAULT_COSTS):
        self.costs = costs
        self.capacity_pages = max(1, costs.epc_usable // costs.page_size)
        self._pages = _LruSet(self.capacity_pages)
        self.faults = 0
        self.loads = 0

    @property
    def resident_pages(self):
        """Number of pages currently resident."""
        return len(self._pages)

    def touch_page(self, page_id):
        """Access one enclave page; returns True if it was resident.

        A miss counts as an EPC page fault: the OS evicts the LRU page
        (encrypting it out to untrusted memory) and loads this one.
        """
        hit = self._pages.touch(page_id)
        self.loads += 1
        if not hit:
            self.faults += 1
        return hit

    def discard_page(self, page_id):
        """Drop one page if resident (an EREMOVE: the page is returned
        to the free pool without an eviction write-back)."""
        self._pages.discard(page_id)

    def release_owner(self, owner):
        """EREMOVE every resident page belonging to ``owner`` (a memory
        name); returns how many pages were released.  This is what a
        dying enclave's teardown path must call -- otherwise the dead
        enclave's pages keep occupying the shared EPC and every
        surviving enclave on the platform pays its paging pressure."""
        return self._pages.discard_owner(owner)

    def resident_page_keys(self):
        """Snapshot of ``(owner, page_id)`` keys currently resident."""
        return self._pages.keys()

    def evict_all(self):
        """Drop every resident page (platform reset)."""
        self._pages.clear()
        self.faults = 0
        self.loads = 0


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous allocation in a simulated address space."""

    base: int
    size: int
    label: str = ""

    def slice(self, offset, size):
        """A sub-region; bounds-checked."""
        if offset < 0 or size < 0 or offset + size > self.size:
            raise CapacityError(
                "slice [%d, %d) outside region of size %d"
                % (offset, offset + size, self.size)
            )
        return MemoryRegion(self.base + offset, size, self.label)

    @property
    def end(self):
        return self.base + self.size


class SimulatedMemory:
    """A byte-addressed memory charged in virtual cycles.

    ``enclave=True`` routes LLC misses through the MEE and pages through
    the (shared) EPC.  Allocation is a bump allocator: regions are laid
    out contiguously in allocation order, which is how the SCBR engine
    obtains its sequential subscription layout.
    """

    def __init__(self, clock, costs=DEFAULT_COSTS, enclave=False, epc=None,
                 llc=None, name="mem"):
        if enclave and epc is None:
            raise CapacityError("enclave memory requires an EpcModel")
        self.clock = clock
        self.costs = costs
        self.enclave = enclave
        self.epc = epc
        self.llc = llc if llc is not None else LlcModel(costs)
        self.name = name
        self.stats = MemoryStats()
        self._next_address = 0
        self._freed_bytes = 0
        self._freed_regions = set()
        self._released = False

    @property
    def allocated_bytes(self):
        """Total bytes handed out so far."""
        return self._next_address

    @property
    def resident_bytes(self):
        """Bytes still live: handed out and never freed.

        The bump allocator does not reuse address space, so this -- not
        :attr:`allocated_bytes` -- is the working-set figure an EPC
        watermark policy must compare against the usable EPC.
        """
        return self._next_address - self._freed_bytes

    def allocate(self, size, label=""):
        """Reserve ``size`` contiguous bytes and return the region."""
        if size <= 0:
            raise CapacityError("allocation size must be positive")
        region = MemoryRegion(self._next_address, size, label)
        self._next_address += size
        return region

    def allocate_aligned(self, size, label=""):
        """Allocate starting at the next page boundary."""
        page = self.costs.page_size
        remainder = self._next_address % page
        if remainder:
            self._next_address += page - remainder
        return self.allocate(size, label)

    def free(self, region):
        """Release ``region``: its pages leave the EPC, its lines the LLC.

        The bump allocator never reuses addresses, but a freed record
        must stop contributing to enclave paging pressure: pages fully
        inside the region are EREMOVEd from the EPC (no eviction
        write-back) and fully-covered cache lines are dropped.  Pages
        and lines straddling the region boundary may hold neighbouring
        live data and stay resident.  Returns the bytes released.
        """
        if region is None or self._released:
            return 0
        if region.end > self._next_address:
            raise CapacityError(
                "region [%d, %d) was never allocated here"
                % (region.base, region.end)
            )
        identity = (region.base, region.size)
        if identity in self._freed_regions:
            raise CapacityError(
                "region [%d, %d) already freed" % (region.base, region.end)
            )
        self._freed_regions.add(identity)
        self._freed_bytes += region.size
        costs = self.costs
        if self.enclave and self.epc is not None:
            first_page = -(-region.base // costs.page_size)  # ceil
            last_page = region.end // costs.page_size        # exclusive
            for page_id in range(first_page, last_page):
                self.epc.discard_page((self.name, page_id))
        first_line = -(-region.base // costs.line_size)
        last_line = region.end // costs.line_size
        for line_id in range(first_line, last_line):
            self.llc.discard_line((self.name, line_id))
        return region.size

    def release_all(self):
        """Release everything this memory still holds (enclave death).

        Models the OS reclaiming a destroyed enclave's EPC pages
        (EREMOVE, no write-back) and the cache lines it occupied: after
        this call :attr:`resident_bytes` is zero and the shared EPC/LLC
        no longer carry any of this memory's pages or lines, so a dead
        shard stops exerting paging pressure on its platform.
        Idempotent; returns the bytes released.
        """
        if self._released:
            return 0
        self._released = True
        released = self.resident_bytes
        self._freed_bytes = self._next_address
        if self.enclave and self.epc is not None:
            self.epc.release_owner(self.name)
        self.llc.release_owner(self.name)
        return released

    @property
    def released(self):
        """True once :meth:`release_all` tore this memory down."""
        return self._released

    def watermark_exceeded(self, fraction):
        """Whether the resident set crossed ``fraction`` of the usable EPC.

        Non-enclave memories never page, so the watermark never trips.
        This is the signal an EPC-pressure-driven sharding policy polls
        before admitting more state into one enclave.
        """
        if not self.enclave:
            return False
        return self.resident_bytes >= fraction * self.costs.epc_usable

    def compute(self, cycles):
        """Charge pure computation (identical inside and outside)."""
        self.stats.cycles_compute += cycles
        self.clock.charge(cycles)

    def access(self, region, offset=0, size=None, write=False):
        """Touch ``size`` bytes of ``region`` starting at ``offset``.

        Charges page faults (enclave only) plus per-line LLC costs and
        updates :attr:`stats`.  Returns the cycles charged.
        """
        if size is None:
            size = region.size - offset
        if size <= 0:
            return 0
        if offset < 0 or offset + size > region.size:
            raise CapacityError("access outside region bounds")
        costs = self.costs
        start = region.base + offset
        end = start + size

        charged = 0
        if self.enclave:
            first_page = start // costs.page_size
            last_page = (end - 1) // costs.page_size
            for page_id in range(first_page, last_page + 1):
                if not self.epc.touch_page((self.name, page_id)):
                    self.stats.page_faults += 1
                    charged += costs.page_fault_cycles

        first_line = start // costs.line_size
        last_line = (end - 1) // costs.line_size
        for line_id in range(first_line, last_line + 1):
            self.stats.accesses += 1
            if self.llc.touch_line((self.name, line_id)):
                self.stats.llc_hits += 1
                charged += costs.llc_hit_cycles
            elif self.enclave:
                self.stats.llc_misses += 1
                charged += costs.mee_read_cycles
            else:
                self.stats.llc_misses += 1
                charged += costs.dram_cycles
        # Writes pay the same read-modify-write path in this model; the
        # MEE encrypts on writeback, folded into mee_read_cycles.
        self.stats.cycles_memory += charged
        self.clock.charge(charged)
        return charged

    def copy(self, source, destination, size=None):
        """Model a memcpy: read the source, write the destination."""
        if size is None:
            size = min(source.size, destination.size)
        cycles = self.access(source, size=size)
        cycles += self.access(destination, size=size, write=True)
        return cycles
