"""Remote attestation: quoting enclave, quotes, verification service.

Mirrors the SGX EPID/DCAP flow at the granularity the paper relies on:

1. an application enclave produces a *report* (measurement + user data);
2. the platform's *quoting enclave* signs the report with its
   platform-specific attestation key, yielding a :class:`Quote`;
3. a remote :class:`AttestationService` (standing in for Intel's IAS /
   a DCAP verifier) checks the signature against the registered
   platform keys and applies a measurement allowlist.

The SCF delivery path (:mod:`repro.scone.cas`) embeds quotes in channel
handshakes so configuration secrets only ever flow to enclaves whose
identity has been verified -- the property Section V-A of the paper
requires.
"""

from dataclasses import dataclass

from repro.errors import AttestationError, IntegrityError
from repro.crypto.rsa import RsaKeyPair


@dataclass(frozen=True)
class Quote:
    """A signed statement: enclave `measurement` ran on `platform_id`
    and bound `report_data` (e.g. a channel key fingerprint)."""

    platform_id: str
    measurement: str
    report_data: bytes
    signature: int

    def signed_payload(self):
        """The bytes covered by the quoting enclave's signature."""
        return (
            b"sgx-quote|"
            + self.platform_id.encode("utf-8")
            + b"|"
            + self.measurement.encode("ascii")
            + b"|"
            + self.report_data
        )

    def to_bytes(self):
        """Serialise for embedding in handshakes."""
        signature = self.signature.to_bytes(
            (self.signature.bit_length() + 7) // 8 or 1, "big"
        )
        fields = (
            self.platform_id.encode("utf-8"),
            self.measurement.encode("ascii"),
            self.report_data,
            signature,
        )
        return b"".join(
            len(piece).to_bytes(4, "big") + piece for piece in fields
        )

    @classmethod
    def from_bytes(cls, raw):
        """Parse a quote serialised by :meth:`to_bytes`."""
        fields = []
        view = memoryview(raw)
        while view:
            if len(view) < 4:
                raise IntegrityError("truncated quote")
            length = int.from_bytes(view[:4], "big")
            view = view[4:]
            if len(view) < length:
                raise IntegrityError("truncated quote field")
            fields.append(bytes(view[:length]))
            view = view[length:]
        if len(fields) != 4:
            raise IntegrityError("malformed quote")
        return cls(
            platform_id=fields[0].decode("utf-8"),
            measurement=fields[1].decode("ascii"),
            report_data=fields[2],
            signature=int.from_bytes(fields[3], "big"),
        )


class QuotingEnclave:
    """The platform's quote signer.

    Holds the attestation key; in real SGX this key is provisioned by
    Intel and certified, here the public half is registered with the
    :class:`AttestationService` out of band.
    """

    def __init__(self, platform_id, random_source=None, key_bits=1024):
        self.platform_id = platform_id
        self._keypair = RsaKeyPair.generate(bits=key_bits, random_source=random_source)

    @property
    def public_key(self):
        """The attestation verification key to register with a service."""
        return self._keypair.public_key

    def quote(self, report):
        """Sign a local report into a remotely verifiable :class:`Quote`."""
        unsigned = Quote(
            platform_id=self.platform_id,
            measurement=report.measurement,
            report_data=report.report_data,
            signature=0,
        )
        signature = self._keypair.sign(unsigned.signed_payload())
        return Quote(
            platform_id=self.platform_id,
            measurement=report.measurement,
            report_data=report.report_data,
            signature=signature,
        )


class AttestationService:
    """A remote verifier with platform registry and measurement policy."""

    def __init__(self):
        self._platform_keys = {}
        self._trusted_measurements = set()

    def register_platform(self, platform_id, public_key):
        """Record a platform's attestation public key (provisioning)."""
        self._platform_keys[platform_id] = public_key

    def deregister_platform(self, platform_id):
        """Forget a platform's attestation key (decommissioning).

        Quotes from the platform fail verification afterwards, exactly
        as if the platform had never been provisioned.
        """
        self._platform_keys.pop(platform_id, None)

    def platform_registered(self, platform_id):
        """Whether ``platform_id`` currently has a registered key."""
        return platform_id in self._platform_keys

    def trust_measurement(self, measurement):
        """Allowlist an enclave measurement."""
        self._trusted_measurements.add(measurement)

    def revoke_measurement(self, measurement):
        """Remove a measurement from the allowlist."""
        self._trusted_measurements.discard(measurement)

    @property
    def trusted_measurements(self):
        """The current allowlist (copy)."""
        return set(self._trusted_measurements)

    def check_policy(self, quote, expected_measurement=None,
                     expected_report_data=None):
        """Apply the cheap policy checks of :meth:`verify` to ``quote``.

        Everything except the signature: the platform must be
        registered, the measurement trusted (or equal to
        ``expected_measurement``), and the report data equal to
        ``expected_report_data`` when given.  Verification caches rerun
        this on every hit so revocation and deregistration stay live
        even when the signature check is skipped.
        """
        if quote.platform_id not in self._platform_keys:
            raise AttestationError(
                "platform %r is not registered" % quote.platform_id
            )
        self._check_measurement(quote, expected_measurement)
        if expected_report_data is not None:
            if quote.report_data != expected_report_data:
                raise AttestationError("report data mismatch")
        return True

    def verify(self, quote, expected_measurement=None, expected_report_data=None):
        """Validate ``quote``; raises :class:`AttestationError` on failure.

        Checks, in order: the platform is registered, the signature is
        valid under that platform's key, the measurement is trusted (or
        equals ``expected_measurement``), and the report data matches
        ``expected_report_data`` when given.
        """
        public_key = self._platform_keys.get(quote.platform_id)
        if public_key is None:
            raise AttestationError(
                "platform %r is not registered" % quote.platform_id
            )
        try:
            public_key.verify(quote.signed_payload(), quote.signature)
        except IntegrityError as exc:
            raise AttestationError("quote signature invalid") from exc
        self._check_measurement(quote, expected_measurement)
        if expected_report_data is not None:
            if quote.report_data != expected_report_data:
                raise AttestationError("report data mismatch")
        return True

    def _check_measurement(self, quote, expected_measurement):
        if expected_measurement is not None:
            if quote.measurement != expected_measurement:
                raise AttestationError(
                    "measurement mismatch: quote reports %s, expected %s"
                    % (quote.measurement[:16], expected_measurement[:16])
                )
        elif quote.measurement not in self._trusted_measurements:
            raise AttestationError(
                "measurement %s... is not trusted" % quote.measurement[:16]
            )
