"""Deterministic Intel SGX simulator.

SGX hardware is unavailable in this environment, so this package models
the mechanisms that produce the performance and security behaviour the
paper reports:

- :mod:`~repro.sgx.costs` -- the cycle cost model (LLC hits, DRAM, MEE
  decryption on enclave cache misses, OS-serviced EPC page faults,
  enclave transitions), with constants taken from SCONE (OSDI'16) and
  *Intel SGX Explained*.
- :mod:`~repro.sgx.memory` -- an LLC + EPC memory hierarchy charged in
  virtual cycles; running identical code against an enclave memory and a
  native memory reproduces Figure 3's flat -> knee -> 18x curve.
- :mod:`~repro.sgx.enclave` -- enclaves with code measurement, ECALL /
  OCALL transitions, and in-enclave state.
- :mod:`~repro.sgx.attestation` -- quoting enclave, quotes, and a remote
  verification service (IAS-like).
- :mod:`~repro.sgx.sealing` -- sealing keys bound to measurement or
  signer identity.
- :mod:`~repro.sgx.platform` -- an SGX-capable machine tying the pieces
  together.
"""

from repro.sgx.attestation import AttestationService, Quote, QuotingEnclave
from repro.sgx.costs import MemoryCosts, DEFAULT_COSTS
from repro.sgx.enclave import Enclave, EnclaveCode, EnclaveContext
from repro.sgx.memory import EpcModel, LlcModel, MemoryStats, SimulatedMemory
from repro.sgx.platform import SgxPlatform
from repro.sgx.sealing import SealedBlob, SealingPolicy

__all__ = [
    "AttestationService",
    "DEFAULT_COSTS",
    "Enclave",
    "EnclaveCode",
    "EnclaveContext",
    "EpcModel",
    "LlcModel",
    "MemoryCosts",
    "MemoryStats",
    "Quote",
    "QuotingEnclave",
    "SealedBlob",
    "SealingPolicy",
    "SgxPlatform",
    "SimulatedMemory",
]
