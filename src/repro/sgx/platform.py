"""An SGX-capable machine: clock, caches, EPC, quoting enclave, fuses."""

import itertools

from repro.crypto.kdf import hkdf
from repro.crypto.primitives import DeterministicRandomSource, SystemRandomSource
from repro.sgx.attestation import QuotingEnclave
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.enclave import Enclave
from repro.sgx.memory import EpcModel, LlcModel, SimulatedMemory
from repro.sgx.sealing import SealingPolicy, seal as _seal, unseal as _unseal
from repro.sim.clock import CycleClock
from repro.telemetry import default_registry

_platform_ids = itertools.count(1)


class SgxPlatform:
    """One physical machine with SGX support.

    Owns the virtual cycle clock, a shared LLC, the shared EPC, the
    platform fuse secret (root of sealing keys), and the quoting
    enclave.  Create application enclaves with :meth:`load_enclave` and
    untrusted-side memories with :meth:`native_memory` so both worlds
    are charged on the same clock.
    """

    def __init__(self, costs=DEFAULT_COSTS, platform_id=None, seed=None,
                 quoting_key_bits=1024):
        self.costs = costs
        self.platform_id = platform_id or ("sgx-platform-%d" % next(_platform_ids))
        self.clock = CycleClock()
        self.llc = LlcModel(costs)
        self.epc = EpcModel(costs)
        if seed is None:
            random_source = SystemRandomSource()
        else:
            random_source = DeterministicRandomSource(seed)
        self._fuse_secret = random_source.bytes(32)
        self.quoting_enclave = QuotingEnclave(
            self.platform_id, random_source=random_source, key_bits=quoting_key_bits
        )
        self._enclaves = []
        # EPC paging telemetry: sampled at snapshot time (gauge_fn), so
        # the per-access hot path in SimulatedMemory stays untouched.
        # Labelled by a per-registry ordinal, not platform_id -- the
        # global platform counter differs between two same-seed runs in
        # one process, and snapshots must stay byte-identical.
        registry = default_registry()
        ordinal = registry.next_index("sgx.platform")
        epc = self.epc
        registry.gauge_fn("sgx.epc.faults", lambda: epc.faults,
                          platform=ordinal)
        registry.gauge_fn("sgx.epc.loads", lambda: epc.loads,
                          platform=ordinal)
        registry.gauge_fn("sgx.epc.resident_pages",
                          lambda: epc.resident_pages, platform=ordinal)

    @property
    def enclaves(self):
        """Enclaves currently loaded on this platform."""
        return list(self._enclaves)

    def load_enclave(self, code, name=None):
        """Create and initialise an enclave from measured code."""
        enclave = Enclave(self, code, name=name)
        self._enclaves.append(enclave)
        return enclave

    def native_memory(self, name="native"):
        """Untrusted memory on this machine (same clock and LLC)."""
        return SimulatedMemory(
            clock=self.clock, costs=self.costs, enclave=False,
            llc=self.llc, name=name,
        )

    def quote(self, enclave, report_data=b""):
        """Produce a remotely verifiable quote for ``enclave``.

        In real SGX the report originates inside the enclave (see
        :meth:`EnclaveContext.report`); this helper serves
        infrastructure code that owns the enclave object itself.
        """
        from repro.sgx.enclave import Report

        report = Report(enclave.measurement, report_data, enclave.enclave_id)
        return self.quoting_enclave.quote(report)

    def _signer_of(self, enclave):
        """The signer identity (MRSIGNER analogue) of an enclave."""
        signer = hkdf(
            enclave.code.name.encode("utf-8"), b"signer-identity", length=16
        )
        return signer.hex()

    def seal(self, enclave, data, policy=None):
        """Seal ``data`` to the enclave's identity on this platform."""
        policy = policy or SealingPolicy.MRENCLAVE
        return _seal(
            self._fuse_secret,
            enclave.measurement,
            self._signer_of(enclave),
            data,
            policy=policy,
        )

    def unseal(self, enclave, blob):
        """Unseal a blob for ``enclave``; fails for foreign identities."""
        return _unseal(
            self._fuse_secret,
            enclave.measurement,
            self._signer_of(enclave),
            blob,
        )

    def reset_memory_system(self):
        """Flush LLC and EPC (benchmark isolation between runs)."""
        self.llc.flush()
        self.epc.evict_all()
