"""Structured queries over the secure store.

:class:`SecureRecordStore` layers JSON records and a small query engine
over :class:`~repro.bigdata.kvstore.SecureTable`: filter, project,
order, limit, and grouped aggregation.  Every row is decrypted and
authenticated by the FS shield on access, so queries run on verified
plaintext *inside* the trusted boundary while the cloud's disk holds
only ciphertext -- the "secure structured data store" of Section
III-B with an actual query surface.

Predicates are ``(column, op, value)`` triples (ops: ``== != < <= >
>=``), combined conjunctively -- the same filter shape the SCBR layer
uses, deliberately, so applications can reuse selection logic across
the store and the bus.
"""

import json
import operator

from repro.errors import ConfigurationError
from repro.bigdata.kvstore import SecureTable

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

AGGREGATES = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "mean": lambda values: sum(values) / len(values),
}


def _matches(record, where):
    for column, op, value in where:
        if op not in _OPS:
            raise ConfigurationError("unknown operator %r" % op)
        if column not in record:
            return False
        if not _OPS[op](record[column], value):
            return False
    return True


class SecureRecordStore:
    """JSON records with keys, over an authenticated encrypted table."""

    def __init__(self, volume, name):
        self.table = SecureTable(volume, name)

    def __len__(self):
        return len(self.table)

    def insert(self, key, record):
        """Store a record (a JSON-serialisable dict)."""
        if not isinstance(record, dict):
            raise ConfigurationError("records must be dicts")
        self.table.put(key, json.dumps(record, sort_keys=True).encode("utf-8"))

    def get(self, key):
        """Fetch one record by key (authenticated)."""
        return json.loads(self.table.get(key).decode("utf-8"))

    def delete(self, key):
        """Remove a record."""
        self.table.delete(key)

    def _rows(self, key_prefix=""):
        for key, blob in self.table.scan(key_prefix):
            yield key, json.loads(blob.decode("utf-8"))

    def query(self, where=(), project=None, order_by=None, descending=False,
              limit=None, key_prefix=""):
        """Filter/project/order/limit; returns ``[(key, record), ...]``.

        ``where`` is a conjunction of ``(column, op, value)`` triples;
        ``project`` keeps only the named columns; ``order_by`` sorts by
        a column (rows missing it sort first).
        """
        rows = [
            (key, record)
            for key, record in self._rows(key_prefix)
            if _matches(record, where)
        ]
        if order_by is not None:
            rows.sort(
                key=lambda pair: (order_by in pair[1],
                                  pair[1].get(order_by)),
                reverse=descending,
            )
        if limit is not None:
            if limit < 0:
                raise ConfigurationError("limit must be non-negative")
            rows = rows[:limit]
        if project is not None:
            rows = [
                (key, {column: record[column]
                       for column in project if column in record})
                for key, record in rows
            ]
        return rows

    def aggregate(self, column, aggregate="sum", where=(), group_by=None,
                  key_prefix=""):
        """Aggregate ``column`` over matching rows.

        Without ``group_by`` returns a scalar; with it, a dict keyed by
        the grouping column's values.  Aggregates: count, max, mean,
        min, sum.
        """
        function = AGGREGATES.get(aggregate)
        if function is None:
            raise ConfigurationError("unknown aggregate %r" % aggregate)
        groups = {}
        for _key, record in self._rows(key_prefix):
            if not _matches(record, where) or column not in record:
                continue
            bucket = record.get(group_by) if group_by is not None else None
            groups.setdefault(bucket, []).append(record[column])
        if group_by is None:
            values = groups.get(None, [])
            if not values:
                return None
            return function(values)
        return {bucket: function(values) for bucket, values in groups.items()}
