"""Secure map/reduce.

Mappers and reducers are enclave entry points; every record crossing an
enclave boundary (input splits in, intermediate shuffle data, final
output) travels AEAD-sealed under a per-job key, so the untrusted
driver that moves data between stages never sees plaintext.  The
shuffle partitions by a keyed hash so even key *names* are opaque
outside.

Splits, shuffle partitions, and outputs are sealed with the batch AEAD
framing (:class:`~repro.crypto.aead.SealedBatch`): one nonce and one tag
per boundary crossing instead of per record, and one keystream pass over
the whole frame.  The driver dispatches map tasks and reduce tasks on a
thread pool sized by ``job.mappers`` / ``job.reducers`` -- the dominant
ecall cost is HMAC-SHA256 inside hashlib's C code, which releases the
GIL, so threads overlap the crypto work of independent tasks.

The plain reference implementation (:func:`plain_mapreduce`) defines
the semantics; the property tests assert the secure engine computes the
same function.

Failure recovery: the driver checkpoints each completed task's *sealed*
output (map partitions per split, reduce output per partition) into a
:class:`MapReduceCheckpoint` -- untrusted-safe, since everything in it
is ciphertext under the job key.  A worker crash
(:class:`~repro.errors.WorkerCrashError`, whether injected by the chaos
layer or surfaced by a dead enclave) is retried on a freshly loaded --
and, when an attestation service is configured, re-attested -- worker
with exponential backoff in virtual time; after the retry budget the
job fails cleanly with one :class:`~repro.errors.RetryExhaustedError`,
and a later run against the same checkpoint resumes from the completed
splits instead of starting over.
"""

import json
import threading
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, IntegrityError, WorkerCrashError
from repro.crypto.aead import AeadKey, SealedBatch
from repro.crypto.primitives import hmac_sha256
from repro.retry import BackoffClock, RetryPolicy, retry_call
from repro.sgx.enclave import EnclaveCode
from repro.telemetry import (
    DEFAULT_CYCLE_BUCKETS,
    default_registry,
    exponential_buckets,
)


def plain_mapreduce(map_fn, reduce_fn, records):
    """Reference semantics: map, group by key, reduce each group."""
    groups = defaultdict(list)
    for record in records:
        for key, value in map_fn(record):
            groups[key].append(value)
    return {key: reduce_fn(key, values) for key, values in sorted(groups.items())}


@dataclass(frozen=True)
class MapReduceJob:
    """A job: the two functions plus parallelism settings.

    ``combiner_fn`` (optional) enables map-side combining: each mapper
    pre-reduces its partition-local values with
    ``combiner_fn(key, values) -> partial`` before sealing the shuffle
    data, and the reducer reduces the partials.  Only valid when the
    reduction is associative and commutative over partials (sums,
    counts, min/max, ...), as in classic MapReduce.
    """

    map_fn: object
    reduce_fn: object
    mappers: int = 4
    reducers: int = 2
    combiner_fn: Optional[object] = None

    def __post_init__(self):
        if self.mappers < 1 or self.reducers < 1:
            raise ConfigurationError("mappers and reducers must be >= 1")


def _encode(obj):
    return json.dumps(obj, sort_keys=True, default=str).encode("utf-8")


def _decode(raw):
    return json.loads(raw.decode("utf-8"))


def _seal_batch(key, kind, items, workers=None):
    """Seal a list of JSON-encodable items as one batch blob.

    The whole list is one JSON payload inside the batch frame: one
    ``json.dumps``, one keystream pass, one nonce+tag -- per-item
    encoding would cost a dumps/loads round per record.  Splits larger
    than one chunk auto-select the chunked ``SB2`` framing, and
    ``workers`` spreads their keystream over the process pool.
    """
    return key.encrypt_batch(
        [_encode(items)], aad=kind, workers=workers
    ).to_bytes()


def _open_batch(key, kind, blob, workers=None):
    try:
        records = key.decrypt_batch(
            SealedBatch.from_bytes(blob), aad=kind, workers=workers
        )
    except IntegrityError as exc:
        raise IntegrityError(
            "map/reduce %s data failed authentication" % kind.decode()
        ) from exc
    return _decode(records[0]) if records else []


# --- enclave entry points ---

def _enclave_init(ctx, job_key_bytes, reducers, seal_workers=None):
    ctx.state["key"] = AeadKey(bytes.fromhex(job_key_bytes))
    ctx.state["reducers"] = reducers
    ctx.state["partition_salt"] = ctx.state["key"].key_bytes[:16]
    ctx.state["seal_workers"] = seal_workers
    return True


def _partition_of(ctx, key_repr):
    digest = hmac_sha256(ctx.state["partition_salt"], key_repr.encode("utf-8"))
    return int.from_bytes(digest[:4], "big") % ctx.state["reducers"]


def _enclave_map(ctx, map_fn, sealed_split, combiner_fn=None):
    """Run one map task: open split, map, (combine,) seal partitions."""
    key = ctx.state["key"]
    seal_workers = ctx.state.get("seal_workers")
    records = _open_batch(key, b"split", sealed_split, workers=seal_workers)
    partitions = defaultdict(list)
    # Output keys repeat heavily in aggregations; memoise the keyed
    # partition hash per distinct key instead of HMACing every pair.
    partition_memo = {}
    for record in records:
        for out_key, out_value in map_fn(record):
            key_repr = repr(out_key)
            partition = partition_memo.get(key_repr)
            if partition is None:
                partition = _partition_of(ctx, key_repr)
                partition_memo[key_repr] = partition
            partitions[partition].append([out_key, out_value])
    if combiner_fn is not None:
        for partition, pairs in partitions.items():
            groups = defaultdict(list)
            for out_key, out_value in pairs:
                if isinstance(out_key, list):
                    out_key = tuple(out_key)
                groups[out_key].append(out_value)
            partitions[partition] = [
                [list(out_key) if isinstance(out_key, tuple) else out_key,
                 combiner_fn(out_key, values)]
                for out_key, values in groups.items()
            ]
    return {
        partition: _seal_batch(key, b"shuffle", pairs, workers=seal_workers)
        for partition, pairs in partitions.items()
    }


def _enclave_reduce(ctx, reduce_fn, sealed_shuffles):
    """Run one reduce task: group its partition's pairs and reduce."""
    key = ctx.state["key"]
    seal_workers = ctx.state.get("seal_workers")
    groups = defaultdict(list)
    for blob in sealed_shuffles:
        for out_key, out_value in _open_batch(
            key, b"shuffle", blob, workers=seal_workers
        ):
            # JSON round-trips tuples as lists; normalise to hashable.
            if isinstance(out_key, list):
                out_key = tuple(out_key)
            groups[out_key].append(out_value)
    result = {
        repr(out_key): reduce_fn(out_key, values)
        for out_key, values in groups.items()
    }
    return _seal_batch(
        key, b"output", sorted(result.items()), workers=seal_workers
    )


WORKER_ENTRY_POINTS = {
    "init": _enclave_init,
    "map": _enclave_map,
    "reduce": _enclave_reduce,
}

WORKER_CODE = EnclaveCode("mapreduce-worker", WORKER_ENTRY_POINTS)


class MapReduceCheckpoint:
    """Sealed intermediate results of a job, safe on untrusted storage.

    Holds the map phase's sealed shuffle partitions per input split and
    the reduce phase's sealed outputs per partition.  All values are
    AEAD ciphertext under the job key, so the checkpoint leaks nothing
    beyond sizes; tampering is caught when a blob is opened.  A
    checkpoint is bound to one job key fingerprint -- resuming a
    different job against it is a configuration error, not silent
    garbage.
    """

    def __init__(self):
        self.map_outputs = {}      # split_index -> {partition: sealed blob}
        self.reduce_outputs = {}   # partition -> sealed output blob
        self.job_tag = None

    def bind(self, job_tag):
        """Associate (or re-verify) the owning job's key fingerprint."""
        if self.job_tag is None:
            self.job_tag = job_tag
        elif self.job_tag != job_tag:
            raise ConfigurationError(
                "checkpoint belongs to job %s, not %s"
                % (self.job_tag, job_tag)
            )

    def record_map(self, split_index, partitions):
        """Store the sealed shuffle partitions of a completed map task."""
        self.map_outputs[split_index] = dict(partitions)

    def record_reduce(self, partition, blob):
        """Store the sealed output of a completed reduce task."""
        self.reduce_outputs[partition] = blob

    @property
    def completed_splits(self):
        """Input splits whose map output is already checkpointed."""
        return sorted(self.map_outputs)

    @property
    def stored_bytes(self):
        """Total sealed bytes held by the checkpoint."""
        total = sum(
            len(blob)
            for partitions in self.map_outputs.values()
            for blob in partitions.values()
        )
        total += sum(len(blob) for blob in self.reduce_outputs.values())
        return total


class SecureMapReduce:
    """The untrusted driver: splits, schedules, shuffles -- all sealed.

    When an ``attestation_service`` is supplied, the driver verifies a
    quote from every worker enclave before provisioning the job key --
    a swapped worker binary never sees a single record.  (Omitting it
    models a driver that already trusts its enclaves, e.g. inside one
    measured deployment.)
    """

    def __init__(self, platform, job, attestation_service=None,
                 chaos=None, retry_policy=None, job_key=None,
                 seal_workers=None):
        """``chaos`` (a :class:`~repro.chaos.ChaosInjector`) injects
        worker crashes; ``retry_policy`` bounds re-execution of crashed
        tasks (default: crashes propagate, matching the seed
        behaviour).  ``job_key`` lets a restarted driver reuse a prior
        job's key so it can resume that job's checkpoint.
        ``seal_workers`` spreads the keystream of chunk-sized splits,
        shuffle partitions, and outputs over the process pool (sealed
        bytes are identical at any worker count)."""
        self.platform = platform
        self.job = job
        self.job_key = job_key if job_key is not None else AeadKey.generate()
        self.chaos = chaos
        self.retry_policy = retry_policy
        self.seal_workers = seal_workers
        self._attestation_service = attestation_service
        self._mappers = [
            self._spawn_worker("mapper-%d" % i) for i in range(job.mappers)
        ]
        self._reducers = [
            self._spawn_worker("reducer-%d" % i) for i in range(job.reducers)
        ]
        self.sealed_bytes_moved = 0
        self.backoff = BackoffClock()
        self.recoveries = []
        self.crashes_detected = 0
        self.splits_resumed = 0
        self._recovery_lock = threading.Lock()
        # Worker threads share the platform clock, so a *per-task*
        # cycle delta would fold in whatever the other threads charged
        # meanwhile -- a nondeterministic number.  The registry instead
        # gets per-split sealed sizes (thread-free facts) and whole-
        # phase clock deltas measured from the driver thread after the
        # pool joins.
        registry = default_registry()
        self._tel_map_tasks = registry.counter("bigdata.map_tasks")
        self._tel_reduce_tasks = registry.counter("bigdata.reduce_tasks")
        self._tel_sealed_bytes = registry.counter("bigdata.sealed_bytes_moved")
        self._tel_crashes = registry.counter("bigdata.crashes_detected")
        self._tel_resumed = registry.counter("bigdata.splits_resumed")
        self._tel_checkpoints = registry.counter("bigdata.checkpoint_records")
        self._tel_split_bytes = registry.histogram(
            "bigdata.split_bytes", buckets=exponential_buckets(64, 4, 10)
        )
        self._tel_map_phase = registry.histogram(
            "bigdata.map_phase_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )
        self._tel_reduce_phase = registry.histogram(
            "bigdata.reduce_phase_cycles", buckets=DEFAULT_CYCLE_BUCKETS
        )

    def _spawn_worker(self, name):
        """Load, (re-)attest, and provision one worker enclave."""
        enclave = self.platform.load_enclave(WORKER_CODE, name=name)
        if self._attestation_service is not None:
            quote = self.platform.quote(enclave, report_data=b"mapreduce-join")
            self._attestation_service.verify(
                quote, expected_measurement=WORKER_CODE.measurement
            )
        enclave.ecall(
            "init", self.job_key.key_bytes.hex(), self.job.reducers,
            self.seal_workers,
        )
        return enclave

    def _run_task(self, role, index, enclaves, ecall_args, crash_check):
        """Execute one task with bounded retry on worker crashes.

        ``enclaves`` is the role's worker list; on recovery the crashed
        slot is replaced by a freshly loaded, re-attested worker (each
        task owns its slot, so concurrent tasks never race).  Backoff
        is charged to the shared virtual clock and every recovery
        episode is recorded for the E5 latency report.
        """
        task_name = "%s-%d" % (role, index)
        task_backoff = BackoffClock()

        def attempt_once(attempt):
            if crash_check is not None and crash_check(index, attempt):
                raise WorkerCrashError(
                    "%s crashed (attempt %d)" % (task_name, attempt)
                )
            # A destroyed enclave raises EnclaveLostError (transient),
            # which the retry loop converts into a respawned worker.
            return enclaves[index].ecall(*ecall_args)

        def on_retry(attempt, error, delay):
            task_backoff.sleep(delay)
            enclaves[index] = self._spawn_worker(
                "%s-retry%d" % (task_name, attempt)
            )
            with self._recovery_lock:
                self.crashes_detected += 1
                self.backoff.sleep(delay)
            self._tel_crashes.inc()

        if self.retry_policy is None:
            return attempt_once(1)
        result = retry_call(attempt_once, self.retry_policy, on_retry=on_retry)
        if task_backoff.sleeps:
            with self._recovery_lock:
                self.recoveries.append({
                    "task": task_name,
                    "attempts": task_backoff.sleeps + 1,
                    "backoff_seconds": task_backoff.seconds,
                })
        return result

    def _splits(self, records):
        """Non-empty record splits, at most ``job.mappers`` of them.

        Small jobs with ``mappers > len(records)`` would otherwise
        produce empty trailing splits that still pay sealing and an
        ecall each for zero records.
        """
        if not records:
            return
        count = self.job.mappers
        size = (len(records) + count - 1) // count
        for index in range(count):
            split = records[index * size : (index + 1) * size]
            if split:
                yield split

    def run(self, records, checkpoint=None):
        """Execute the job; returns ``{repr(key): reduced_value}``.

        With ``checkpoint`` (a :class:`MapReduceCheckpoint`), completed
        tasks' sealed outputs are recorded as the job progresses and
        already-checkpointed tasks are skipped -- a driver that died
        mid-job resumes instead of recomputing, and a job that failed
        cleanly after exhausting retries keeps its finished splits.
        """
        records = list(records)
        if checkpoint is not None:
            checkpoint.bind(self.job_key.fingerprint())
        # 1. Seal input splits (driver holds them only encrypted; the
        #    sealing itself happens at the data owner / ingestion side,
        #    modelled by using the job key here).
        sealed_splits = [
            _seal_batch(
                self.job_key, b"split", split, workers=self.seal_workers
            )
            for split in self._splits(records)
        ]
        for sealed in sealed_splits:
            self._tel_split_bytes.observe(len(sealed))
        # 2. Map phase: every mapper's ecall runs on its own thread;
        #    results are merged on the driver thread so the
        #    sealed_bytes_moved accounting never races.  Crashed tasks
        #    are retried per the retry policy; completed tasks are
        #    checkpointed and skipped on resume.
        crash_check = self.chaos.mapper_crashes if self.chaos else None
        done = checkpoint.map_outputs if checkpoint is not None else {}
        pending = [
            (index, sealed)
            for index, sealed in enumerate(sealed_splits)
            if index not in done
        ]
        self.splits_resumed += len(sealed_splits) - len(pending)
        self._tel_resumed.inc(len(sealed_splits) - len(pending))

        def run_map(task):
            index, sealed = task
            return index, self._run_task(
                "map", index, self._mappers,
                ("map", self.job.map_fn, sealed, self.job.combiner_fn),
                crash_check,
            )

        partition_maps = dict(done)
        if pending:
            map_phase_start = self.platform.clock.now
            with ThreadPoolExecutor(max_workers=len(pending)) as pool:
                for index, partitions in pool.map(run_map, pending):
                    partition_maps[index] = partitions
                    if checkpoint is not None:
                        checkpoint.record_map(index, partitions)
                        self._tel_checkpoints.inc()
            self._tel_map_tasks.inc(len(pending))
            self._tel_map_phase.observe(
                self.platform.clock.now - map_phase_start
            )
        shuffle_bins = defaultdict(list)
        for index in sorted(partition_maps):
            for partition, blob in partition_maps[index].items():
                self.sealed_bytes_moved += len(blob)
                self._tel_sealed_bytes.inc(len(blob))
                shuffle_bins[partition].append(blob)
        # 3. Reduce phase, same pattern: concurrent ecalls, serial
        #    merge, bounded re-execution, per-partition checkpoints.
        crash_check = self.chaos.reducer_crashes if self.chaos else None
        reduce_done = checkpoint.reduce_outputs if checkpoint is not None else {}
        reduce_pending = [
            partition for partition in range(self.job.reducers)
            if partition not in reduce_done
        ]

        def run_reduce(partition):
            return partition, self._run_task(
                "reduce", partition, self._reducers,
                ("reduce", self.job.reduce_fn,
                 shuffle_bins.get(partition, [])),
                crash_check,
            )

        output_blobs = dict(reduce_done)
        if reduce_pending:
            reduce_phase_start = self.platform.clock.now
            with ThreadPoolExecutor(max_workers=len(reduce_pending)) as pool:
                for partition, blob in pool.map(run_reduce, reduce_pending):
                    output_blobs[partition] = blob
                    if checkpoint is not None:
                        checkpoint.record_reduce(partition, blob)
                        self._tel_checkpoints.inc()
            self._tel_reduce_tasks.inc(len(reduce_pending))
            self._tel_reduce_phase.observe(
                self.platform.clock.now - reduce_phase_start
            )
        merged = {}
        for partition in sorted(output_blobs):
            output_blob = output_blobs[partition]
            self.sealed_bytes_moved += len(output_blob)
            self._tel_sealed_bytes.inc(len(output_blob))
            for key_repr, value in _open_batch(
                self.job_key, b"output", output_blob,
                workers=self.seal_workers,
            ):
                merged[key_repr] = value
        return merged

    def run_matching_plain(self, records):
        """Secure run, keyed like :func:`plain_mapreduce` for comparison."""
        return self.run(records)
