"""Secure map/reduce.

Mappers and reducers are enclave entry points; every record crossing an
enclave boundary (input splits in, intermediate shuffle data, final
output) travels AEAD-sealed under a per-job key, so the untrusted
driver that moves data between stages never sees plaintext.  The
shuffle partitions by a keyed hash so even key *names* are opaque
outside.

Splits, shuffle partitions, and outputs are sealed with the batch AEAD
framing (:class:`~repro.crypto.aead.SealedBatch`): one nonce and one tag
per boundary crossing instead of per record, and one keystream pass over
the whole frame.  The driver dispatches map tasks and reduce tasks on a
thread pool sized by ``job.mappers`` / ``job.reducers`` -- the dominant
ecall cost is HMAC-SHA256 inside hashlib's C code, which releases the
GIL, so threads overlap the crypto work of independent tasks.

The plain reference implementation (:func:`plain_mapreduce`) defines
the semantics; the property tests assert the secure engine computes the
same function.
"""

import json
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey, SealedBatch
from repro.crypto.primitives import hmac_sha256
from repro.sgx.enclave import EnclaveCode


def plain_mapreduce(map_fn, reduce_fn, records):
    """Reference semantics: map, group by key, reduce each group."""
    groups = defaultdict(list)
    for record in records:
        for key, value in map_fn(record):
            groups[key].append(value)
    return {key: reduce_fn(key, values) for key, values in sorted(groups.items())}


@dataclass(frozen=True)
class MapReduceJob:
    """A job: the two functions plus parallelism settings.

    ``combiner_fn`` (optional) enables map-side combining: each mapper
    pre-reduces its partition-local values with
    ``combiner_fn(key, values) -> partial`` before sealing the shuffle
    data, and the reducer reduces the partials.  Only valid when the
    reduction is associative and commutative over partials (sums,
    counts, min/max, ...), as in classic MapReduce.
    """

    map_fn: object
    reduce_fn: object
    mappers: int = 4
    reducers: int = 2
    combiner_fn: object = None

    def __post_init__(self):
        if self.mappers < 1 or self.reducers < 1:
            raise ConfigurationError("mappers and reducers must be >= 1")


def _encode(obj):
    return json.dumps(obj, sort_keys=True, default=str).encode("utf-8")


def _decode(raw):
    return json.loads(raw.decode("utf-8"))


def _seal_batch(key, kind, items):
    """Seal a list of JSON-encodable items as one batch blob.

    The whole list is one JSON payload inside the batch frame: one
    ``json.dumps``, one keystream pass, one nonce+tag -- per-item
    encoding would cost a dumps/loads round per record.
    """
    return key.encrypt_batch([_encode(items)], aad=kind).to_bytes()


def _open_batch(key, kind, blob):
    try:
        records = key.decrypt_batch(SealedBatch.from_bytes(blob), aad=kind)
    except IntegrityError as exc:
        raise IntegrityError(
            "map/reduce %s data failed authentication" % kind.decode()
        ) from exc
    return _decode(records[0]) if records else []


# --- enclave entry points ---

def _enclave_init(ctx, job_key_bytes, reducers):
    ctx.state["key"] = AeadKey(bytes.fromhex(job_key_bytes))
    ctx.state["reducers"] = reducers
    ctx.state["partition_salt"] = ctx.state["key"].key_bytes[:16]
    return True


def _partition_of(ctx, key_repr):
    digest = hmac_sha256(ctx.state["partition_salt"], key_repr.encode("utf-8"))
    return int.from_bytes(digest[:4], "big") % ctx.state["reducers"]


def _enclave_map(ctx, map_fn, sealed_split, combiner_fn=None):
    """Run one map task: open split, map, (combine,) seal partitions."""
    key = ctx.state["key"]
    records = _open_batch(key, b"split", sealed_split)
    partitions = defaultdict(list)
    # Output keys repeat heavily in aggregations; memoise the keyed
    # partition hash per distinct key instead of HMACing every pair.
    partition_memo = {}
    for record in records:
        for out_key, out_value in map_fn(record):
            key_repr = repr(out_key)
            partition = partition_memo.get(key_repr)
            if partition is None:
                partition = _partition_of(ctx, key_repr)
                partition_memo[key_repr] = partition
            partitions[partition].append([out_key, out_value])
    if combiner_fn is not None:
        for partition, pairs in partitions.items():
            groups = defaultdict(list)
            for out_key, out_value in pairs:
                if isinstance(out_key, list):
                    out_key = tuple(out_key)
                groups[out_key].append(out_value)
            partitions[partition] = [
                [list(out_key) if isinstance(out_key, tuple) else out_key,
                 combiner_fn(out_key, values)]
                for out_key, values in groups.items()
            ]
    return {
        partition: _seal_batch(key, b"shuffle", pairs)
        for partition, pairs in partitions.items()
    }


def _enclave_reduce(ctx, reduce_fn, sealed_shuffles):
    """Run one reduce task: group its partition's pairs and reduce."""
    key = ctx.state["key"]
    groups = defaultdict(list)
    for blob in sealed_shuffles:
        for out_key, out_value in _open_batch(key, b"shuffle", blob):
            # JSON round-trips tuples as lists; normalise to hashable.
            if isinstance(out_key, list):
                out_key = tuple(out_key)
            groups[out_key].append(out_value)
    result = {
        repr(out_key): reduce_fn(out_key, values)
        for out_key, values in groups.items()
    }
    return _seal_batch(key, b"output", sorted(result.items()))


WORKER_ENTRY_POINTS = {
    "init": _enclave_init,
    "map": _enclave_map,
    "reduce": _enclave_reduce,
}

WORKER_CODE = EnclaveCode("mapreduce-worker", WORKER_ENTRY_POINTS)


class SecureMapReduce:
    """The untrusted driver: splits, schedules, shuffles -- all sealed.

    When an ``attestation_service`` is supplied, the driver verifies a
    quote from every worker enclave before provisioning the job key --
    a swapped worker binary never sees a single record.  (Omitting it
    models a driver that already trusts its enclaves, e.g. inside one
    measured deployment.)
    """

    def __init__(self, platform, job, attestation_service=None):
        self.platform = platform
        self.job = job
        self.job_key = AeadKey.generate()
        self._mappers = [
            platform.load_enclave(WORKER_CODE, name="mapper-%d" % i)
            for i in range(job.mappers)
        ]
        self._reducers = [
            platform.load_enclave(WORKER_CODE, name="reducer-%d" % i)
            for i in range(job.reducers)
        ]
        for enclave in self._mappers + self._reducers:
            if attestation_service is not None:
                quote = platform.quote(enclave, report_data=b"mapreduce-join")
                attestation_service.verify(
                    quote, expected_measurement=WORKER_CODE.measurement
                )
            enclave.ecall("init", self.job_key.key_bytes.hex(), job.reducers)
        self.sealed_bytes_moved = 0

    def _splits(self, records):
        """Non-empty record splits, at most ``job.mappers`` of them.

        Small jobs with ``mappers > len(records)`` would otherwise
        produce empty trailing splits that still pay sealing and an
        ecall each for zero records.
        """
        if not records:
            return
        count = self.job.mappers
        size = (len(records) + count - 1) // count
        for index in range(count):
            split = records[index * size : (index + 1) * size]
            if split:
                yield split

    def run(self, records):
        """Execute the job; returns ``{repr(key): reduced_value}``."""
        records = list(records)
        # 1. Seal input splits (driver holds them only encrypted; the
        #    sealing itself happens at the data owner / ingestion side,
        #    modelled by using the job key here).
        sealed_splits = [
            _seal_batch(self.job_key, b"split", split)
            for split in self._splits(records)
        ]
        # 2. Map phase: every mapper's ecall runs on its own thread;
        #    results are merged on the driver thread so the
        #    sealed_bytes_moved accounting never races.
        map_tasks = list(zip(self._mappers, sealed_splits))
        shuffle_bins = defaultdict(list)
        if map_tasks:
            with ThreadPoolExecutor(max_workers=len(map_tasks)) as pool:
                partition_maps = list(pool.map(
                    lambda task: task[0].ecall(
                        "map", self.job.map_fn, task[1], self.job.combiner_fn
                    ),
                    map_tasks,
                ))
            for partitions in partition_maps:
                for partition, blob in partitions.items():
                    self.sealed_bytes_moved += len(blob)
                    shuffle_bins[partition].append(blob)
        # 3. Reduce phase, same pattern: concurrent ecalls, serial merge.
        reduce_tasks = [
            (enclave, shuffle_bins.get(partition, []))
            for partition, enclave in enumerate(self._reducers)
        ]
        with ThreadPoolExecutor(max_workers=len(reduce_tasks)) as pool:
            output_blobs = list(pool.map(
                lambda task: task[0].ecall(
                    "reduce", self.job.reduce_fn, task[1]
                ),
                reduce_tasks,
            ))
        merged = {}
        for output_blob in output_blobs:
            self.sealed_bytes_moved += len(output_blob)
            for key_repr, value in _open_batch(
                self.job_key, b"output", output_blob
            ):
                merged[key_repr] = value
        return merged

    def run_matching_plain(self, records):
        """Secure run, keyed like :func:`plain_mapreduce` for comparison."""
        return self.run(records)
