"""Windowed stream processing inside enclaves.

Smart-meter analytics are stream jobs: continuous sub-minute readings,
aggregated over time windows.  This module provides the two classic
window operators, runnable as in-enclave handlers of a micro-service
and as the per-shard operators of the sealed streaming plane
(``repro.streams``):

- :class:`TumblingWindow` -- fixed, non-overlapping windows;
- :class:`SlidingWindow` -- overlapping windows with a slide step.

Both are *event-time* operators: records carry timestamps, and windows
close when the watermark (event time high-water mark minus the allowed
lateness) passes their end.  Records arriving later than the allowed
lateness are counted but dropped, never silently mis-aggregated.

Pane bookkeeping is watermark-incremental: open panes are tracked in a
min-heap of window starts, so each ingest pays O(log panes) plus the
panes it actually closes -- not a scan of every open pane, which
degraded quadratically under many one-shot keys.  Watermarks can also
advance *without* a record (:meth:`~_WindowOperatorBase.advance_watermark`,
the punctuation hook), so panes for keys that stop emitting are evicted
as soon as the watermark passes them instead of lingering until some
unrelated record happens to arrive.

``late_records`` and ``shed_records`` stay readable as plain attributes
but are mirrored onto the telemetry registry (per-operator counters
plus an open-pane gauge), so ``repro.cli metrics`` and sealed telemetry
snapshots see window-operator health without reaching into instances.

:func:`window_service_handler` adapts an operator into a
:class:`~repro.microservices.service.MicroService` handler so windowed
aggregates can be deployed like any other secure micro-service.
Malformed records are rejected with the repo's error taxonomy --
:class:`~repro.errors.FatalError` for poison input that redelivery can
never fix, :class:`~repro.errors.TransientError` (``CapacityError``)
for backpressure -- instead of leaking raw ``KeyError``/``ValueError``
through the micro-service layer.
"""

import heapq
import json
import math

from repro.errors import CapacityError, ConfigurationError, FatalError
from repro.telemetry import default_registry


def _ordered(keys):
    """Deterministic ordering for pane keys of any (mixed) type."""
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=lambda key: (type(key).__name__, repr(key)))


class _WindowOperatorBase:
    """Shared machinery: watermark, lateness, closing, shedding."""

    def __init__(self, size, aggregate_fn, key_fn=None, lateness=0.0,
                 pane_budget=None, registry=None):
        if size <= 0:
            raise ConfigurationError("window size must be positive")
        if lateness < 0:
            raise ConfigurationError("lateness must be non-negative")
        if pane_budget is not None and pane_budget < 1:
            raise ConfigurationError("pane budget must be at least 1")
        self.size = size
        self.aggregate_fn = aggregate_fn
        self.key_fn = key_fn or (lambda record: None)
        self.lateness = lateness
        self.pane_budget = pane_budget
        self.watermark = float("-inf")
        self.late_records = 0
        self.shed_records = 0
        # (window_start, key) -> [records]
        self._panes = {}
        # (window_start, key) -> records dropped from a shed pane; the
        # mark survives until the window closes, so stragglers for a
        # shed pane keep counting instead of resurrecting it.
        self._shed = {}
        # window_start -> set of keys with an open (or shed) pane, plus
        # a min-heap of starts: closing pops ripe starts off the heap
        # instead of scanning every pane.
        self._starts = {}
        self._heap = []
        # Tombstones for shed panes whose window has now closed; the
        # plane drains these into emitted window metadata.
        self._shed_closed = []
        registry = registry if registry is not None else default_registry()
        index = registry.next_index("streaming.operator")
        self._tel_late = registry.counter(
            "streaming.late_records", operator=index
        )
        self._tel_shed = registry.counter(
            "streaming.shed_records", operator=index
        )
        registry.gauge_fn(
            "streaming.open_panes", lambda: len(self._panes), operator=index
        )

    def _windows_for(self, timestamp):
        raise NotImplementedError

    # -- ingest and closing --------------------------------------------

    def _track(self, window_start, key):
        keys = self._starts.get(window_start)
        if keys is None:
            keys = self._starts[window_start] = set()
            heapq.heappush(self._heap, window_start)
        keys.add(key)

    def ingest(self, timestamp, record):
        """Feed one record; returns the list of windows this closes.

        Each closed window is ``(window_start, window_end, key, result)``
        with ``result = aggregate_fn(values)``.  Raises
        :class:`~repro.errors.CapacityError` (transient backpressure)
        when a ``pane_budget`` is set and the record would open a pane
        beyond it -- nothing is mutated in that case, so the caller can
        retry after draining.
        """
        if timestamp < self.watermark - self.lateness:
            self.late_records += 1
            self._tel_late.inc()
            return []
        key = self.key_fn(record)
        starts = self._windows_for(timestamp)
        if self.pane_budget is not None:
            fresh = sum(
                1 for window_start in starts
                if (window_start, key) not in self._panes
                and (window_start, key) not in self._shed
            )
            if fresh and len(self._panes) + fresh > self.pane_budget:
                raise CapacityError(
                    "pane budget %d exceeded; %d panes open"
                    % (self.pane_budget, len(self._panes))
                )
        for window_start in starts:
            pane = (window_start, key)
            if pane in self._shed:
                # The pane was shed; the record joins its dropped count
                # rather than silently resurrecting a partial window.
                self._shed[pane] += 1
                self.shed_records += 1
                self._tel_shed.inc()
                continue
            records = self._panes.get(pane)
            if records is None:
                records = self._panes[pane] = []
                self._track(window_start, key)
            records.append(record)
        self.watermark = max(self.watermark, timestamp)
        return self._close_ripe()

    def advance_watermark(self, timestamp):
        """Advance the watermark without a record (a punctuation).

        Closes -- and thereby evicts -- every pane the new watermark
        passes, including panes for keys that stopped emitting.  This
        is the eviction path for dormant keys: before it existed, a
        pane lingered until some unrelated record's ingest happened to
        close its window.
        """
        self.watermark = max(self.watermark, timestamp)
        return self._close_ripe()

    def _close_pane(self, window_start, key, closed):
        pane = (window_start, key)
        dropped = self._shed.pop(pane, None)
        if dropped is not None:
            self._shed_closed.append(
                (window_start, window_start + self.size, key, dropped)
            )
            return
        values = self._panes.pop(pane)
        closed.append(
            (
                window_start,
                window_start + self.size,
                key,
                self.aggregate_fn(values),
            )
        )

    def _close_ripe(self):
        closing_point = self.watermark - self.lateness
        closed = []
        while self._heap and self._heap[0] + self.size <= closing_point:
            window_start = heapq.heappop(self._heap)
            # Stale entries are possible: extract() removes starts
            # without sifting the heap (lazy deletion).
            keys = self._starts.pop(window_start, None)
            if keys is None:
                continue
            for key in _ordered(keys):
                self._close_pane(window_start, key, closed)
        return closed

    def flush(self):
        """Close every open window (end of stream)."""
        closed = []
        for window_start in sorted(self._starts):
            for key in _ordered(self._starts[window_start]):
                self._close_pane(window_start, key, closed)
        self._starts.clear()
        self._heap = []
        return closed

    @property
    def open_windows(self):
        """Number of panes currently buffered."""
        return len(self._panes)

    # -- load shedding --------------------------------------------------

    def open_panes(self):
        """``(window_start, key, record_count)`` for every open pane."""
        return [
            (window_start, key, len(records))
            for (window_start, key), records in self._panes.items()
        ]

    def shed_pane(self, window_start, key):
        """Explicitly drop one open pane (load shedding).

        The buffered records are discarded and counted in
        ``shed_records``; the pane stays *marked* so stragglers keep
        counting and a tombstone carrying the dropped-record count is
        emitted when the window closes (drain it via
        :meth:`drain_shed_tombstones`) -- shedding is visible in the
        output stream, never silent.  Returns the records dropped.
        """
        pane = (window_start, key)
        records = self._panes.pop(pane, None)
        if records is None:
            raise ConfigurationError(
                "no open pane (%r, %r) to shed" % (window_start, key)
            )
        self._shed[pane] = len(records)
        self.shed_records += len(records)
        self._tel_shed.inc(len(records))
        return len(records)

    def drain_shed_tombstones(self):
        """``(window_start, window_end, key, records_dropped)`` for shed
        panes whose window has closed since the last drain."""
        tombstones = self._shed_closed
        self._shed_closed = []
        return tombstones

    # -- state migration (checkpoints and key-range handoff) -----------

    def state_dict(self):
        """JSON-serialisable snapshot of every open pane and counter."""
        watermark = self.watermark
        return {
            "watermark": None if watermark == float("-inf") else watermark,
            "late_records": self.late_records,
            "shed_records": self.shed_records,
            "panes": [
                [window_start, key, records]
                for (window_start, key), records in sorted(
                    self._panes.items(),
                    key=lambda item: (item[0][0], repr(item[0][1])),
                )
            ],
            "shed": [
                [window_start, key, dropped]
                for (window_start, key), dropped in sorted(
                    self._shed.items(),
                    key=lambda item: (item[0][0], repr(item[0][1])),
                )
            ],
        }

    def load_state_dict(self, state):
        """Restore from :meth:`state_dict`; replaces current state."""
        self._panes = {}
        self._shed = {}
        self._starts = {}
        self._heap = []
        self._shed_closed = []
        watermark = state.get("watermark")
        self.watermark = float("-inf") if watermark is None else watermark
        self.late_records = state.get("late_records", 0)
        self.shed_records = state.get("shed_records", 0)
        for window_start, key, records in state.get("panes", ()):
            self._panes[(window_start, key)] = list(records)
            self._track(window_start, key)
        for window_start, key, dropped in state.get("shed", ()):
            self._shed[(window_start, key)] = dropped
            self._track(window_start, key)

    def extract(self, predicate):
        """Remove and return panes whose key satisfies ``predicate``.

        Returns a partial state dict (panes, shed marks, watermark)
        suitable for :meth:`adopt` on another operator -- the key-range
        handoff primitive for shard splits and merges.  Counters stay
        with this operator.
        """
        moved_panes = []
        for pane in sorted(
            self._panes, key=lambda item: (item[0], repr(item[1]))
        ):
            window_start, key = pane
            if predicate(key):
                moved_panes.append(
                    [window_start, key, self._panes.pop(pane)]
                )
        moved_shed = []
        for pane in sorted(
            self._shed, key=lambda item: (item[0], repr(item[1]))
        ):
            window_start, key = pane
            if predicate(key):
                moved_shed.append([window_start, key, self._shed.pop(pane)])
        for window_start, key, _payload in moved_panes + moved_shed:
            keys = self._starts.get(window_start)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._starts[window_start]
        watermark = self.watermark
        return {
            "watermark": None if watermark == float("-inf") else watermark,
            "panes": moved_panes,
            "shed": moved_shed,
        }

    def adopt(self, part):
        """Merge a partial state dict produced by :meth:`extract`.

        Pane contents must be disjoint from this operator's (a key is
        owned by exactly one shard at a time); the watermark advances
        to the donor's if it is ahead, so adopted panes can never
        reopen behind the closing point.
        """
        for window_start, key, records in part.get("panes", ()):
            pane = (window_start, key)
            if pane in self._panes or pane in self._shed:
                raise ConfigurationError(
                    "pane (%r, %r) already open here; ranges overlap"
                    % (window_start, key)
                )
            self._panes[pane] = list(records)
            self._track(window_start, key)
        for window_start, key, dropped in part.get("shed", ()):
            pane = (window_start, key)
            if pane in self._panes or pane in self._shed:
                raise ConfigurationError(
                    "pane (%r, %r) already open here; ranges overlap"
                    % (window_start, key)
                )
            self._shed[pane] = dropped
            self._track(window_start, key)
        watermark = part.get("watermark")
        if watermark is not None:
            self.watermark = max(self.watermark, watermark)


class TumblingWindow(_WindowOperatorBase):
    """Non-overlapping fixed windows: [0,s), [s,2s), ..."""

    def _windows_for(self, timestamp):
        return [int(timestamp // self.size) * self.size]


class SlidingWindow(_WindowOperatorBase):
    """Overlapping windows of ``size`` sliding by ``slide``."""

    def __init__(self, size, slide, aggregate_fn, key_fn=None, lateness=0.0,
                 pane_budget=None, registry=None):
        super().__init__(
            size, aggregate_fn, key_fn=key_fn, lateness=lateness,
            pane_budget=pane_budget, registry=registry,
        )
        if slide <= 0 or slide > size:
            raise ConfigurationError("need 0 < slide <= size")
        self.slide = slide

    def _windows_for(self, timestamp):
        last_start = int(timestamp // self.slide) * self.slide
        starts = []
        start = last_start
        while start > timestamp - self.size:
            starts.append(start)
            start -= self.slide
        return starts


def parse_stream_record(plaintext, timestamp_field="t"):
    """Parse one sealed-event payload into ``(timestamp, record)``.

    Poison input -- undecodable bytes, invalid JSON, a non-object
    record, a missing or non-finite timestamp -- raises
    :class:`~repro.errors.FatalError`: redelivering the same bytes can
    never succeed, so the micro-service layer should dead-letter it
    rather than retry.
    """
    try:
        text = plaintext.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FatalError("malformed stream record: not UTF-8") from exc
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FatalError("malformed stream record: invalid JSON") from exc
    if not isinstance(record, dict):
        raise FatalError(
            "malformed stream record: expected a JSON object, got %s"
            % type(record).__name__
        )
    timestamp = record.get(timestamp_field)
    if isinstance(timestamp, bool) or not isinstance(
            timestamp, (int, float)):
        raise FatalError(
            "malformed stream record: missing numeric timestamp field %r"
            % timestamp_field
        )
    if not math.isfinite(timestamp):
        raise FatalError(
            "malformed stream record: non-finite timestamp %r" % timestamp
        )
    return float(timestamp), record


def window_service_handler(operator, output_topic,
                           timestamp_field="t"):
    """Wrap a window operator as a micro-service handler.

    The handler parses JSON records from sealed events, feeds the
    operator (held in enclave state, so partial aggregates never leave
    the enclave), and emits one sealed output event per closed window.

    Failures follow the repo's error taxonomy: poison records raise
    :class:`~repro.errors.FatalError` (dead-letter, never retry), while
    a full operator's :class:`~repro.errors.CapacityError` propagates
    as the transient backpressure signal it is (the bus may redeliver
    once panes drain).
    """

    def handler(ctx, _topic, plaintext):
        held = ctx.state.setdefault("window_operator", operator)
        timestamp, record = parse_stream_record(
            plaintext, timestamp_field=timestamp_field
        )
        closed = held.ingest(timestamp, record)
        outputs = []
        for window_start, window_end, key, result in closed:
            payload = json.dumps(
                {
                    "window_start": window_start,
                    "window_end": window_end,
                    "key": key,
                    "result": result,
                },
                sort_keys=True,
            ).encode("utf-8")
            outputs.append((output_topic, payload))
        return outputs

    return handler
