"""Windowed stream processing inside enclaves.

Smart-meter analytics are stream jobs: continuous sub-minute readings,
aggregated over time windows.  This module provides the two classic
window operators, runnable as in-enclave handlers of a micro-service:

- :class:`TumblingWindow` -- fixed, non-overlapping windows;
- :class:`SlidingWindow` -- overlapping windows with a slide step.

Both are *event-time* operators: records carry timestamps, and windows
close when the watermark (event time high-water mark minus the allowed
lateness) passes their end.  Records arriving later than the allowed
lateness are counted but dropped, never silently mis-aggregated.

:func:`window_service_handler` adapts an operator into a
:class:`~repro.microservices.service.MicroService` handler so windowed
aggregates can be deployed like any other secure micro-service.
"""

import json
from collections import defaultdict

from repro.errors import ConfigurationError


class _WindowOperatorBase:
    """Shared machinery: watermark, lateness, closing logic."""

    def __init__(self, size, aggregate_fn, key_fn=None, lateness=0.0):
        if size <= 0:
            raise ConfigurationError("window size must be positive")
        if lateness < 0:
            raise ConfigurationError("lateness must be non-negative")
        self.size = size
        self.aggregate_fn = aggregate_fn
        self.key_fn = key_fn or (lambda record: None)
        self.lateness = lateness
        self.watermark = float("-inf")
        self.late_records = 0
        # (window_start, key) -> [values]
        self._panes = defaultdict(list)

    def _windows_for(self, timestamp):
        raise NotImplementedError

    def ingest(self, timestamp, record):
        """Feed one record; returns the list of windows this closes.

        Each closed window is ``(window_start, window_end, key, result)``
        with ``result = aggregate_fn(values)``.
        """
        if timestamp < self.watermark - self.lateness:
            self.late_records += 1
            return []
        key = self.key_fn(record)
        for window_start in self._windows_for(timestamp):
            self._panes[(window_start, key)].append(record)
        self.watermark = max(self.watermark, timestamp)
        return self._close_ripe()

    def _close_ripe(self):
        closing_point = self.watermark - self.lateness
        ripe = [
            (window_start, key)
            for (window_start, key) in self._panes
            if window_start + self.size <= closing_point
        ]
        closed = []
        for window_start, key in sorted(ripe):
            values = self._panes.pop((window_start, key))
            closed.append(
                (
                    window_start,
                    window_start + self.size,
                    key,
                    self.aggregate_fn(values),
                )
            )
        return closed

    def flush(self):
        """Close every open window (end of stream)."""
        remaining = sorted(self._panes)
        closed = []
        for window_start, key in remaining:
            values = self._panes.pop((window_start, key))
            closed.append(
                (
                    window_start,
                    window_start + self.size,
                    key,
                    self.aggregate_fn(values),
                )
            )
        return closed

    @property
    def open_windows(self):
        """Number of panes currently buffered."""
        return len(self._panes)


class TumblingWindow(_WindowOperatorBase):
    """Non-overlapping fixed windows: [0,s), [s,2s), ..."""

    def _windows_for(self, timestamp):
        return [int(timestamp // self.size) * self.size]


class SlidingWindow(_WindowOperatorBase):
    """Overlapping windows of ``size`` sliding by ``slide``."""

    def __init__(self, size, slide, aggregate_fn, key_fn=None, lateness=0.0):
        super().__init__(size, aggregate_fn, key_fn=key_fn, lateness=lateness)
        if slide <= 0 or slide > size:
            raise ConfigurationError("need 0 < slide <= size")
        self.slide = slide

    def _windows_for(self, timestamp):
        last_start = int(timestamp // self.slide) * self.slide
        starts = []
        start = last_start
        while start > timestamp - self.size:
            starts.append(start)
            start -= self.slide
        return starts


def window_service_handler(operator, output_topic,
                           timestamp_field="t"):
    """Wrap a window operator as a micro-service handler.

    The handler parses JSON records from sealed events, feeds the
    operator (held in enclave state, so partial aggregates never leave
    the enclave), and emits one sealed output event per closed window.
    """

    def handler(ctx, _topic, plaintext):
        held = ctx.state.setdefault("window_operator", operator)
        record = json.loads(plaintext.decode())
        closed = held.ingest(record[timestamp_field], record)
        outputs = []
        for window_start, window_end, key, result in closed:
            payload = json.dumps(
                {
                    "window_start": window_start,
                    "window_end": window_end,
                    "key": key,
                    "result": result,
                },
                sort_keys=True,
            ).encode("utf-8")
            outputs.append((output_topic, payload))
        return outputs

    return handler
