"""A secure structured data store.

Rows live as protected files on an untrusted store, one file per row,
under ``/tables/<table>/<key>``; confidentiality, integrity, rollback
and swap protection all come from the SCONE FS shield underneath.  The
table keeps a *manifest row* listing its keys, so `scan` results are
themselves authenticated -- a malicious store cannot hide rows from a
range scan without breaking the manifest's MAC.
"""

import json

from repro.errors import ConfigurationError, IntegrityError


def _row_path(table, key):
    return "/tables/%s/%s" % (table, key)


def _manifest_path(table):
    return "/tables/%s/.manifest" % table


class SecureTable:
    """Key-value rows with authenticated membership."""

    def __init__(self, volume, name):
        if "/" in name or name.startswith("."):
            raise ConfigurationError("invalid table name %r" % name)
        self.volume = volume
        self.name = name
        self._keys = self._load_manifest()

    def _load_manifest(self):
        path = _manifest_path(self.name)
        if not self.volume.exists(path):
            return set()
        raw = self.volume.read_all(path)
        try:
            return set(json.loads(raw.decode("utf-8")))
        except ValueError as exc:
            raise IntegrityError("corrupt table manifest") from exc

    def _store_manifest(self):
        path = _manifest_path(self.name)
        payload = json.dumps(sorted(self._keys)).encode("utf-8")
        if self.volume.exists(path):
            self.volume.delete(path)
        self.volume.write(path, payload)

    def __len__(self):
        return len(self._keys)

    def __contains__(self, key):
        return key in self._keys

    def put(self, key, value):
        """Insert or overwrite a row."""
        if "/" in key:
            raise ConfigurationError("row keys must not contain '/'")
        path = _row_path(self.name, key)
        if self.volume.exists(path):
            self.volume.delete(path)
        self.volume.write(path, value)
        if key not in self._keys:
            self._keys.add(key)
            self._store_manifest()

    def put_many(self, items):
        """Insert or overwrite many rows with one manifest update.

        ``items`` is an iterable of ``(key, value)`` pairs.  ``put`` in a
        loop re-seals the (growing) manifest after every new key --
        quadratic in sealed bytes; this writes all rows first and seals
        the manifest once.
        """
        added = False
        for key, value in items:
            if "/" in key:
                raise ConfigurationError("row keys must not contain '/'")
            path = _row_path(self.name, key)
            if self.volume.exists(path):
                self.volume.delete(path)
            self.volume.write(path, value)
            if key not in self._keys:
                self._keys.add(key)
                added = True
        if added:
            self._store_manifest()

    def get(self, key):
        """Read a row; raises for unknown keys."""
        if key not in self._keys:
            raise ConfigurationError(
                "no row %r in table %s" % (key, self.name)
            )
        return self.volume.read_all(_row_path(self.name, key))

    def delete(self, key):
        """Remove a row."""
        if key not in self._keys:
            return
        self.volume.delete(_row_path(self.name, key))
        self._keys.discard(key)
        self._store_manifest()

    def keys(self):
        """All row keys, sorted."""
        return sorted(self._keys)

    def scan(self, prefix=""):
        """Authenticated (key, value) pairs whose key starts with prefix."""
        return [
            (key, self.get(key))
            for key in self.keys()
            if key.startswith(prefix)
        ]

    def verify(self):
        """Re-authenticate every row against the shield."""
        for key in self._keys:
            self.get(key)
        return True

    @classmethod
    def open(cls, volume, name):
        """Open an existing (or new) table on a volume."""
        return cls(volume, name)
