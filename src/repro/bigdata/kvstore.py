"""A secure structured data store.

Rows live as protected files on an untrusted store, one file per row,
under ``/tables/<table>/<key>``; confidentiality, integrity, rollback
and swap protection all come from the SCONE FS shield underneath.  The
table keeps a *manifest row* listing its keys, so `scan` results are
themselves authenticated -- a malicious store cannot hide rows from a
range scan without breaking the manifest's MAC.

The untrusted store may also simply *fail* for a while (the chaos
layer's :class:`~repro.chaos.ChaosVolume` injects exactly that).  With
a ``retry_policy``, every volume I/O retries
:class:`~repro.errors.TransientError` with exponential backoff in
virtual time; row writes are idempotent (write-over, manifest sealed
once), so a retried or resumed ``put_many`` never corrupts the table.
Integrity failures are never retried -- tampering is an attack, not a
hiccup.
"""

import json

from repro.crypto.aead import SealedBatch
from repro.errors import ConfigurationError, IntegrityError
from repro.retry import BackoffClock, retry_call


def _row_path(table, key):
    return "/tables/%s/%s" % (table, key)


def _manifest_path(table):
    return "/tables/%s/.manifest" % table


class SecureTable:
    """Key-value rows with authenticated membership."""

    def __init__(self, volume, name, retry_policy=None):
        if "/" in name or name.startswith("."):
            raise ConfigurationError("invalid table name %r" % name)
        self.volume = volume
        self.name = name
        self.retry_policy = retry_policy
        self.backoff = BackoffClock()
        self.retries = 0
        self._keys = self._load_manifest()

    def _io(self, operation, *args):
        """Run one volume call, retrying transient storage failures.

        Without a policy the call goes straight through (zero overhead
        on the happy path).  With one, ``TransientError`` -- e.g. an
        injected :class:`~repro.errors.StorageUnavailableError` -- is
        retried with exponential backoff charged to ``self.backoff``;
        ``IntegrityError`` is fatal and propagates on the first raise.
        """
        bound = getattr(self.volume, operation)
        if self.retry_policy is None:
            return bound(*args)

        def count_retry(attempt, exc, delay):
            self.retries += 1

        return retry_call(
            lambda attempt: bound(*args),
            policy=self.retry_policy,
            clock=self.backoff,
            on_retry=count_retry,
        )

    def _load_manifest(self):
        path = _manifest_path(self.name)
        if not self.volume.exists(path):
            return set()
        raw = self._io("read_all", path)
        try:
            return set(json.loads(raw.decode("utf-8")))
        except ValueError as exc:
            raise IntegrityError("corrupt table manifest") from exc

    def _store_manifest(self):
        path = _manifest_path(self.name)
        payload = json.dumps(sorted(self._keys)).encode("utf-8")
        if self.volume.exists(path):
            self._io("delete", path)
        self._io("write", path, payload)

    def __len__(self):
        return len(self._keys)

    def __contains__(self, key):
        return key in self._keys

    def put(self, key, value):
        """Insert or overwrite a row (idempotent: safe to re-run)."""
        if "/" in key:
            raise ConfigurationError("row keys must not contain '/'")
        path = _row_path(self.name, key)
        if self.volume.exists(path):
            self._io("delete", path)
        self._io("write", path, value)
        if key not in self._keys:
            self._keys.add(key)
            self._store_manifest()

    def put_many(self, items):
        """Insert or overwrite many rows with one manifest update.

        ``items`` is an iterable of ``(key, value)`` pairs.  ``put`` in a
        loop re-seals the (growing) manifest after every new key --
        quadratic in sealed bytes; this writes all rows first and seals
        the manifest once.  The manifest seal comes last, so a run that
        dies mid-way leaves only unregistered row files; re-running the
        same ``put_many`` overwrites them and completes the manifest --
        idempotent resume.
        """
        added = False
        for key, value in items:
            if "/" in key:
                raise ConfigurationError("row keys must not contain '/'")
            path = _row_path(self.name, key)
            if self.volume.exists(path):
                self._io("delete", path)
            self._io("write", path, value)
            if key not in self._keys:
                self._keys.add(key)
                added = True
        if added:
            self._store_manifest()

    def get(self, key):
        """Read a row; raises for unknown keys."""
        if key not in self._keys:
            raise ConfigurationError(
                "no row %r in table %s" % (key, self.name)
            )
        return self._io("read_all", _row_path(self.name, key))

    def delete(self, key):
        """Remove a row."""
        if key not in self._keys:
            return
        self._io("delete", _row_path(self.name, key))
        self._keys.discard(key)
        self._store_manifest()

    def keys(self):
        """All row keys, sorted."""
        return sorted(self._keys)

    def scan(self, prefix=""):
        """Authenticated (key, value) pairs whose key starts with prefix."""
        return [
            (key, self.get(key))
            for key in self.keys()
            if key.startswith(prefix)
        ]

    def verify(self):
        """Re-authenticate every row against the shield."""
        for key in self._keys:
            self.get(key)
        return True

    def _export_aad(self):
        return b"kvstore-export|" + self.name.encode("utf-8")

    def export_sealed(self, export_key, workers=None):
        """Seal the whole table as one batch blob for bulk movement.

        Record 0 is the sorted key list; records 1..n are the row
        values in that order, so membership travels authenticated with
        the data.  The table pays one nonce and one tag; tables larger
        than one chunk auto-select the chunked ``SB2`` framing, and
        ``workers`` spreads the keystream over the process pool.  Row
        values flow from the shield into the frame with no intermediate
        copy beyond the frame itself.
        """
        keys = self.keys()
        payloads = [json.dumps(keys).encode("utf-8")]
        payloads.extend(self.get(key) for key in keys)
        return export_key.encrypt_batch(
            payloads, aad=self._export_aad(), workers=workers
        ).to_bytes()

    @classmethod
    def import_sealed(cls, volume, name, export_key, blob, workers=None,
                      retry_policy=None):
        """Open a sealed export and materialise it as a table.

        Tampering anywhere -- the key list, any row, truncation,
        reordering or splicing of body chunks -- fails closed on the
        batch tag or the chunk manifest before a single row is written.
        """
        table = cls(volume, name, retry_policy=retry_policy)
        records = export_key.decrypt_batch(
            SealedBatch.from_bytes(blob),
            aad=table._export_aad(),
            workers=workers,
        )
        if not records:
            raise IntegrityError("sealed table export carries no key list")
        keys = json.loads(records[0].decode("utf-8"))
        if len(records) != len(keys) + 1:
            raise IntegrityError(
                "sealed table export lists %d keys but carries %d rows"
                % (len(keys), len(records) - 1)
            )
        table.put_many(zip(keys, records[1:]))
        return table

    @classmethod
    def open(cls, volume, name, retry_policy=None):
        """Open an existing (or new) table on a volume."""
        return cls(volume, name, retry_policy=retry_policy)
