"""Secure big-data processing components (paper Section III-B, layer 3).

"Examples of developed components are secure structured data stores,
map/reduce based computations, schedulers, as well as components for
efficient transmission of large amounts of data."

- :mod:`~repro.bigdata.kvstore` -- a secure structured store over the
  SCONE file-system shield.
- :mod:`~repro.bigdata.mapreduce` -- map/reduce whose mappers and
  reducers run in enclaves; intermediate data is sealed end-to-end.
- :mod:`~repro.bigdata.transfer` -- efficient bulk transmission:
  chunking, compression, batching, encryption, with a simulated
  network.

(The scheduler component is :mod:`repro.genpack`.)
"""

from repro.bigdata.kvstore import SecureTable
from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce, plain_mapreduce
from repro.bigdata.query import SecureRecordStore
from repro.bigdata.streaming import (
    SlidingWindow,
    TumblingWindow,
    window_service_handler,
)
from repro.bigdata.transfer import BulkTransfer, SimulatedNetwork, TransferStats

__all__ = [
    "BulkTransfer",
    "MapReduceJob",
    "SecureMapReduce",
    "SecureRecordStore",
    "SecureTable",
    "SimulatedNetwork",
    "SlidingWindow",
    "TransferStats",
    "TumblingWindow",
    "plain_mapreduce",
    "window_service_handler",
]
