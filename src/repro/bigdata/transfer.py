"""Efficient transmission of large amounts of data.

Bulk transfers chunk the payload, compress each chunk, and seal each
*frame* of ``batch_size`` chunks as one
:class:`~repro.crypto.aead.SealedBatch`: the chunks travel
length-prefixed inside a single AEAD frame, so the 48-byte nonce+tag
overhead and the MAC finalisation are paid per frame, not per chunk.
The frame's associated data binds the transfer id, the frame index, the
total frame count, and the compression flag, so the receiver detects
loss, reordering, truncation, and cross-transfer replay.  A
:class:`SimulatedNetwork` charges virtual time per frame
(latency + size/bandwidth), so benchmarks can report throughput and the
compression/batching trade-offs.

:class:`ReliableBulkTransfer` adds selective retransmission on top: the
receiver verifies every frame independently, NACKs the indices that
fail authentication (corrupted in flight -- injected by the chaos
layer's :class:`~repro.chaos.ChaosNetwork`), and the sender retransmits
only those with exponential backoff in virtual time.  Verified frames
are kept across rounds, so resumption is idempotent; after the retry
budget the transfer fails with one typed
:class:`~repro.errors.RetryExhaustedError`.
"""

import zlib
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    IntegrityError,
    RetryExhaustedError,
    TransportError,
)
from repro.crypto.aead import SealedBatch
from repro.retry import BackoffClock, RetryPolicy


@dataclass
class TransferStats:
    """Outcome of one bulk transfer."""

    raw_bytes: int
    compressed_bytes: int
    wire_bytes: int
    chunks: int
    frames: int
    seconds: float

    @property
    def compression_ratio(self):
        """raw / compressed (>1 means compression helped)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    @property
    def throughput_mbps(self):
        """Goodput in megabytes of raw payload per second."""
        if self.seconds == 0:
            return float("inf")
        return self.raw_bytes / 1e6 / self.seconds


class SimulatedNetwork:
    """A point-to-point link with latency and bandwidth."""

    def __init__(self, bandwidth_mbps=1000.0, latency_seconds=0.0002):
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.bandwidth_bytes_per_second = bandwidth_mbps * 1e6 / 8
        self.latency_seconds = latency_seconds
        self.clock_seconds = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0

    def send_frame(self, frame, frame_index=None):
        """Charge the virtual time one frame costs; returns the frame.

        ``frame_index`` identifies the frame within its transfer so
        wrapping links (e.g. the chaos layer's corrupting network) can
        key per-frame decisions; the plain link ignores it.
        """
        self.clock_seconds += (
            self.latency_seconds + len(frame) / self.bandwidth_bytes_per_second
        )
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        return frame


class BulkTransfer:
    """Chunk + compress + seal + batch sender, and the matching receiver.

    ``seal_workers`` flows into the AEAD layer: frames large enough for
    the chunked ``SB2`` framing spread their keystream over the process
    pool (the wire bytes are identical at any worker count).
    """

    def __init__(self, key, chunk_size=64 * 1024, batch_size=8, compress=True,
                 compression_level=1, seal_workers=None):
        if chunk_size < 1 or batch_size < 1:
            raise ConfigurationError("chunk_size and batch_size must be >= 1")
        self.key = key
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.compress = compress
        self.compression_level = compression_level
        self.seal_workers = seal_workers

    def _frame_aad(self, frame_index, frame_count, transfer_id):
        return b"bulk|%s|%d|%d|%d" % (
            transfer_id, frame_index, frame_count, 1 if self.compress else 0
        )

    def seal_frames(self, payload, transfer_id=b"t0"):
        """Chunk, compress, and seal ``payload`` into wire frames.

        Returns ``(frames, chunk_count, compressed_total)``.  The
        sender keeps these pristine frames for retransmission -- what a
        hostile network *returns* may differ from what was sent.
        """
        # Chunks are views into the caller's payload: the uncompressed
        # path hands them to the AEAD framing without ever copying the
        # payload (the sealed frame is the first materialisation), and
        # the compressor reads straight from the view.
        view = memoryview(payload)
        chunks = [
            view[offset : offset + self.chunk_size]
            for offset in range(0, len(view), self.chunk_size)
        ] or [b""]
        if self.compress:
            bodies = [
                zlib.compress(chunk, self.compression_level) for chunk in chunks
            ]
        else:
            bodies = chunks
        compressed_total = sum(len(body) for body in bodies)
        batches = [
            bodies[offset : offset + self.batch_size]
            for offset in range(0, len(bodies), self.batch_size)
        ]
        frames = [
            self.key.encrypt_batch(
                batch,
                aad=self._frame_aad(frame_index, len(batches), transfer_id),
                workers=self.seal_workers,
            ).to_bytes()
            for frame_index, batch in enumerate(batches)
        ]
        return frames, len(chunks), compressed_total

    def send(self, payload, network, transfer_id=b"t0"):
        """Transmit ``payload``; returns ``(frames, stats)``.

        The returned frames are what the *network delivered* (a chaos
        link may have corrupted them in flight), which is exactly what
        the receiver gets to verify.
        """
        frames, chunk_count, compressed_total = self.seal_frames(
            payload, transfer_id
        )
        start = network.clock_seconds
        received = [
            network.send_frame(frame, frame_index=frame_index)
            for frame_index, frame in enumerate(frames)
        ]
        stats = TransferStats(
            raw_bytes=len(payload),
            compressed_bytes=compressed_total,
            wire_bytes=sum(len(frame) for frame in received),
            chunks=chunk_count,
            frames=len(received),
            seconds=network.clock_seconds - start,
        )
        return received, stats

    def open_frame(self, frame, frame_index, frame_count, transfer_id=b"t0"):
        """Verify and decrypt one frame; returns its chunk bodies.

        The per-frame entry point the reliable receiver uses to verify
        frames independently, so one corrupted frame NACKs alone
        instead of failing the whole transfer.
        """
        try:
            batch = SealedBatch.from_bytes(frame)
            return self.key.decrypt_batch(
                batch,
                aad=self._frame_aad(frame_index, frame_count, transfer_id),
                workers=self.seal_workers,
            )
        except IntegrityError as exc:
            raise IntegrityError(
                "bulk frame %d failed authentication (tampered, "
                "reordered, or dropped)" % frame_index
            ) from exc

    def receive(self, frames, transfer_id=b"t0"):
        """Verify, decrypt, decompress, and reassemble the payload."""
        bodies = []
        for frame_index, frame in enumerate(frames):
            bodies.extend(
                self.open_frame(frame, frame_index, len(frames), transfer_id)
            )
        chunks = [
            zlib.decompress(body) if self.compress else body for body in bodies
        ]
        return b"".join(chunks)


@dataclass
class ReliableTransferStats:
    """Outcome of one reliable transfer, recovery accounting included."""

    stats: TransferStats           # the underlying first-pass send
    frames: int
    corrupted: int
    retransmissions: int
    rounds: int
    backoff_seconds: float

    @property
    def goodput_mbps(self):
        """Raw payload bytes per second of wire plus backoff time."""
        seconds = self.stats.seconds + self.backoff_seconds
        if seconds == 0:
            return float("inf")
        return self.stats.raw_bytes / 1e6 / seconds


class ReliableBulkTransfer:
    """Selective retransmission over a corrupting link.

    Wraps a :class:`BulkTransfer`.  :meth:`transmit` pushes every frame
    through ``network`` (typically a
    :class:`~repro.chaos.ChaosNetwork`), verifies each frame on the
    receiver side, and retransmits exactly the frames that failed
    authentication -- verified frames are never resent, so a resumed
    round is idempotent.  Backoff between rounds is charged to virtual
    time; when ``policy.max_attempts`` rounds still leave unverified
    frames, the transfer raises :class:`RetryExhaustedError`.
    """

    def __init__(self, transfer, policy=None):
        self.transfer = transfer
        self.policy = policy or RetryPolicy()
        self.backoff = BackoffClock()
        self.retransmissions = 0
        self.corrupted_detected = 0

    def transmit(self, payload, network, transfer_id=b"t0"):
        """Send ``payload`` reliably; returns ``(payload_out, stats)``."""
        pristine, chunk_count, compressed_total = self.transfer.seal_frames(
            payload, transfer_id
        )
        frame_count = len(pristine)
        start = network.clock_seconds
        received = [
            network.send_frame(frame, frame_index=frame_index)
            for frame_index, frame in enumerate(pristine)
        ]
        send_stats = TransferStats(
            raw_bytes=len(payload),
            compressed_bytes=compressed_total,
            wire_bytes=sum(len(frame) for frame in received),
            chunks=chunk_count,
            frames=frame_count,
            seconds=network.clock_seconds - start,
        )
        bodies = [None] * frame_count
        outstanding = list(range(frame_count))
        rounds = 0
        while True:
            rounds += 1
            nacked = []
            for index in outstanding:
                try:
                    bodies[index] = self.transfer.open_frame(
                        received[index], index, frame_count, transfer_id
                    )
                except IntegrityError:
                    self.corrupted_detected += 1
                    nacked.append(index)
            if not nacked:
                break
            if rounds >= self.policy.max_attempts:
                raise RetryExhaustedError(
                    "transfer %r: frames %r unverified after %d rounds"
                    % (transfer_id, nacked, rounds),
                    attempts=rounds,
                    last_error=TransportError(
                        "%d frames kept failing authentication" % len(nacked)
                    ),
                )
            self.backoff.sleep(self.policy.delay(rounds))
            # Selective retransmission of the *pristine* sealed frames:
            # only the NACKed indices travel again, and each resend is
            # a fresh draw for a chaos network.
            for index in nacked:
                received[index] = network.send_frame(
                    pristine[index], frame_index=index
                )
                self.retransmissions += 1
            outstanding = nacked
        chunks = [
            zlib.decompress(body) if self.transfer.compress else body
            for frame_bodies in bodies
            for body in frame_bodies
        ]
        return b"".join(chunks), ReliableTransferStats(
            stats=send_stats,
            frames=frame_count,
            corrupted=self.corrupted_detected,
            retransmissions=self.retransmissions,
            rounds=rounds,
            backoff_seconds=self.backoff.seconds,
        )
