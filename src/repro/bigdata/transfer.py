"""Efficient transmission of large amounts of data.

Bulk transfers chunk the payload, compress each chunk, and seal each
*frame* of ``batch_size`` chunks as one
:class:`~repro.crypto.aead.SealedBatch`: the chunks travel
length-prefixed inside a single AEAD frame, so the 48-byte nonce+tag
overhead and the MAC finalisation are paid per frame, not per chunk.
The frame's associated data binds the transfer id, the frame index, the
total frame count, and the compression flag, so the receiver detects
loss, reordering, truncation, and cross-transfer replay.  A
:class:`SimulatedNetwork` charges virtual time per frame
(latency + size/bandwidth), so benchmarks can report throughput and the
compression/batching trade-offs.
"""

import zlib
from dataclasses import dataclass

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import SealedBatch


@dataclass
class TransferStats:
    """Outcome of one bulk transfer."""

    raw_bytes: int
    compressed_bytes: int
    wire_bytes: int
    chunks: int
    frames: int
    seconds: float

    @property
    def compression_ratio(self):
        """raw / compressed (>1 means compression helped)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    @property
    def throughput_mbps(self):
        """Goodput in megabytes of raw payload per second."""
        if self.seconds == 0:
            return float("inf")
        return self.raw_bytes / 1e6 / self.seconds


class SimulatedNetwork:
    """A point-to-point link with latency and bandwidth."""

    def __init__(self, bandwidth_mbps=1000.0, latency_seconds=0.0002):
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.bandwidth_bytes_per_second = bandwidth_mbps * 1e6 / 8
        self.latency_seconds = latency_seconds
        self.clock_seconds = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0

    def send_frame(self, frame):
        """Charge the virtual time one frame costs; returns the frame."""
        self.clock_seconds += (
            self.latency_seconds + len(frame) / self.bandwidth_bytes_per_second
        )
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        return frame


class BulkTransfer:
    """Chunk + compress + seal + batch sender, and the matching receiver."""

    def __init__(self, key, chunk_size=64 * 1024, batch_size=8, compress=True,
                 compression_level=1):
        if chunk_size < 1 or batch_size < 1:
            raise ConfigurationError("chunk_size and batch_size must be >= 1")
        self.key = key
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.compress = compress
        self.compression_level = compression_level

    def _frame_aad(self, frame_index, frame_count, transfer_id):
        return b"bulk|%s|%d|%d|%d" % (
            transfer_id, frame_index, frame_count, 1 if self.compress else 0
        )

    def send(self, payload, network, transfer_id=b"t0"):
        """Transmit ``payload``; returns ``(frames, stats)``."""
        chunks = [
            payload[offset : offset + self.chunk_size]
            for offset in range(0, len(payload), self.chunk_size)
        ] or [b""]
        if self.compress:
            bodies = [
                zlib.compress(chunk, self.compression_level) for chunk in chunks
            ]
        else:
            bodies = chunks
        compressed_total = sum(len(body) for body in bodies)
        batches = [
            bodies[offset : offset + self.batch_size]
            for offset in range(0, len(bodies), self.batch_size)
        ]
        frames = []
        start = network.clock_seconds
        for frame_index, batch in enumerate(batches):
            frame = self.key.encrypt_batch(
                batch, aad=self._frame_aad(frame_index, len(batches), transfer_id)
            ).to_bytes()
            frames.append(network.send_frame(frame))
        stats = TransferStats(
            raw_bytes=len(payload),
            compressed_bytes=compressed_total,
            wire_bytes=sum(len(frame) for frame in frames),
            chunks=len(chunks),
            frames=len(frames),
            seconds=network.clock_seconds - start,
        )
        return frames, stats

    def receive(self, frames, transfer_id=b"t0"):
        """Verify, decrypt, decompress, and reassemble the payload."""
        bodies = []
        for frame_index, frame in enumerate(frames):
            try:
                batch = SealedBatch.from_bytes(frame)
                bodies.extend(self.key.decrypt_batch(
                    batch,
                    aad=self._frame_aad(frame_index, len(frames), transfer_id),
                ))
            except IntegrityError as exc:
                raise IntegrityError(
                    "bulk frame %d failed authentication (tampered, "
                    "reordered, or dropped)" % frame_index
                ) from exc
        chunks = [
            zlib.decompress(body) if self.compress else body for body in bodies
        ]
        return b"".join(chunks)
