"""Deterministic discrete-event simulation substrate.

All SecureCloud subsystems that need a notion of time run on this kernel:

- :class:`~repro.sim.clock.CycleClock` -- a CPU-cycle counter used by the
  SGX memory cost model (single-machine micro-architectural time).
- :class:`~repro.sim.events.Environment` -- a discrete-event loop with
  generator-based processes, used by cluster-level simulations (GenPack,
  orchestration, event bus latency).
- :mod:`~repro.sim.resources` -- counting resources and FIFO stores for
  modelling contention.
- :mod:`~repro.sim.rng` -- named, seeded random streams so every
  experiment is reproducible bit-for-bit.
"""

from repro.sim.clock import CycleClock, cycles_to_seconds, seconds_to_cycles
from repro.sim.events import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStream, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "CycleClock",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStream",
    "Resource",
    "Store",
    "Timeout",
    "cycles_to_seconds",
    "derive_seed",
    "seconds_to_cycles",
]
