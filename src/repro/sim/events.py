"""A compact discrete-event kernel with generator-based processes.

The design follows the classic event/process simulation model (as in
SimPy) but is self-contained and deterministic: events scheduled for the
same instant fire in scheduling order, so a simulation with a fixed seed
always produces the same trace.

Usage::

    env = Environment()

    def worker(env, name):
        yield env.timeout(1.5)
        print(env.now, name, "done")

    env.process(worker(env, "a"))
    env.run()
"""

import heapq

from repro.errors import SecureCloudError


class SimulationError(SecureCloudError):
    """The simulation kernel was used incorrectly."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """An occurrence at a point in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` triggers
    them, which schedules their callbacks to run at the current instant.
    Processes wait on events by yielding them.
    """

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._processed = False

    @property
    def triggered(self):
        """True once the event has a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once the kernel has run this event's callbacks."""
        return self._processed

    @property
    def ok(self):
        """True if the event succeeded; valid only once triggered."""
        return self._ok

    @property
    def value(self):
        """The event's value (or exception, if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception.

        A waiting process sees the exception raised at its yield point.
        """
        if self.triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError("timeout delay must be non-negative")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def succeed(self, value=None):  # pragma: no cover - guard
        raise SimulationError("a Timeout is triggered by the kernel")

    fail = succeed


class Process(Event):
    """Wraps a generator; the process event triggers when it returns.

    The generator yields events to wait on.  A failed event raises its
    exception inside the generator; an unhandled exception fails the
    process event (and propagates out of :meth:`Environment.run` if
    nobody waits on it).
    """

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on = None
        # Kick the process off at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        env._schedule(bootstrap)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        interruption = Event(self.env)
        interruption._ok = False
        interruption._value = Interrupt(cause)
        interruption.callbacks.append(self._resume)
        self.env._schedule(interruption)

    def _resume(self, trigger):
        if self.triggered:
            # Interrupted after completion-race; nothing to resume.
            return
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        try:
            if trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            super().succeed(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            super().fail(exc)
            return
        except Exception as exc:
            super().fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                "process yielded %r; processes must yield Event objects" % (target,)
            )
            self._generator.close()
            super().fail(error)
            return
        if target.processed:
            # Callbacks already ran: resume at the current instant.
            relay = Event(self.env)
            relay._ok = target._ok
            relay._value = target._value
            relay.callbacks.append(self._resume)
            self.env._schedule(relay)
        else:
            # Pending or triggered-but-queued: the kernel will invoke the
            # callback when the event is popped.
            target.callbacks.append(self._resume)
            self._waiting_on = target


class AllOf(Event):
    """Triggers when every child event has succeeded.

    Its value is the list of child values in construction order.  Fails
    as soon as any child fails.
    """

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        self._done = False
        for event in self._events:
            if event.processed:
                if not event.ok:
                    self._finish_fail(event.value)
                    break
            else:
                self._pending += 1
                event.callbacks.append(self._on_child)
        if not self._done and self._pending == 0 and not self.triggered:
            self.succeed([event.value for event in self._events])

    def _finish_fail(self, exc):
        self._done = True
        if not self.triggered:
            self.fail(exc)

    def _on_child(self, child):
        if self._done or self.triggered:
            return
        if not child.ok:
            self._finish_fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([event.value for event in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    Its value is a ``(event, value)`` pair identifying which child fired.
    """

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        fired = next((event for event in self._events if event.processed), None)
        if fired is not None:
            if fired.ok:
                self.succeed((fired, fired.value))
            else:
                self.fail(fired.value)
            return
        for event in self._events:
            event.callbacks.append(self._on_child)

    def _on_child(self, child):
        if self.triggered:
            return
        if child.ok:
            self.succeed((child, child.value))
        else:
            self.fail(child.value)


class Environment:
    """The discrete-event loop: a clock plus a priority queue of events."""

    def __init__(self, initial_time=0.0):
        self._now = initial_time
        self._queue = []
        self._sequence = 0

    @property
    def now(self):
        """Current simulated time (float, unit chosen by the caller)."""
        return self._now

    def _schedule(self, event, delay=0.0):
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def event(self):
        """Create a pending :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def call_later(self, delay, callback):
        """Run ``callback()`` after ``delay`` time units; returns the event.

        Plain-callable convenience over the timeout/callback idiom used
        by fault schedules and benchmarks; the callback receives no
        arguments (wrap state in a closure).
        """
        timeout = Timeout(self, delay)
        timeout.callbacks.append(lambda _fired: callback())
        return timeout

    def call_at(self, time, callback):
        """Run ``callback()`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at %r; the clock is already at %r"
                % (time, self._now)
            )
        return self.call_later(time - self._now, callback)

    def process(self, generator):
        """Start a :class:`Process` driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events):
        """Event that fires when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if queue empty."""
        return self._queue[0][0] if self._queue else None

    def step(self):
        """Process the single next event in the queue."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _seq, event = heapq.heappop(self._queue)
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks:
            # Nobody observed the failure: surface it instead of
            # letting the error pass silently.
            raise event.value

    def run(self, until=None):
        """Run until the queue drains, ``until`` (a time or an event).

        Returns the event's value if ``until`` is an event.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.triggered:
                if not self._queue:
                    raise SimulationError("deadlock: event can no longer trigger")
                self.step()
            if sentinel.ok:
                return sentinel.value
            raise sentinel.value
        deadline = until
        while self._queue:
            if deadline is not None and self._queue[0][0] > deadline:
                self._now = deadline
                return None
            self.step()
        if deadline is not None:
            self._now = max(self._now, deadline)
        return None
