"""Contention primitives for process-based simulations.

- :class:`Resource` -- a counting semaphore with FIFO queueing; models
  CPU slots, network links, worker pools.
- :class:`Store` -- an unbounded (or bounded) FIFO of items; models
  message queues and mailboxes.
"""

from collections import deque

from repro.errors import CapacityError
from repro.sim.events import Event


class Resource:
    """A counting resource with FIFO fairness.

    Processes acquire a unit by yielding :meth:`request` and must return
    it with :meth:`release`::

        def job(env, cpu):
            yield cpu.request()
            try:
                yield env.timeout(2.0)
            finally:
                cpu.release()
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise CapacityError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def in_use(self):
        """Number of units currently held."""
        return self._in_use

    @property
    def available(self):
        """Number of units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self):
        """Number of pending acquisition requests."""
        return len(self._waiters)

    def request(self):
        """Return an event that fires when a unit is granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Return one unit, waking the longest-waiting requester."""
        if self._in_use <= 0:
            raise CapacityError("release() without a matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """FIFO store of items with blocking get and optional capacity.

    ``put`` succeeds immediately while below capacity; ``get`` blocks the
    calling process until an item is available.  Items are delivered in
    insertion order, and waiting consumers are served FIFO.
    """

    def __init__(self, env, capacity=None):
        if capacity is not None and capacity < 1:
            raise CapacityError("store capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self._items = deque()
        self._getters = deque()
        self._putters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Return an event that fires once ``item`` is stored."""
        event = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self):
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            item = self._items.popleft()
            self._refill()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def _refill(self):
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed(None)
