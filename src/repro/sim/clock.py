"""Virtual CPU-cycle clock.

The SGX cost model charges every memory access, enclave transition, and
page fault in CPU cycles.  Measuring wall-clock time of a Python
simulator would reflect interpreter overhead, not SGX behaviour; instead
all micro-architectural experiments read this clock.  The default
frequency matches the 2.6 GHz Xeon used by SCONE's evaluation so that
converted latencies are directly comparable to published numbers.
"""

import threading

DEFAULT_FREQUENCY_HZ = 2_600_000_000


def cycles_to_seconds(cycles, frequency_hz=DEFAULT_FREQUENCY_HZ):
    """Convert a cycle count to seconds at the given core frequency."""
    return cycles / frequency_hz


def seconds_to_cycles(seconds, frequency_hz=DEFAULT_FREQUENCY_HZ):
    """Convert seconds to an integer cycle count at the given frequency."""
    return int(round(seconds * frequency_hz))


class CycleClock:
    """A monotonically increasing virtual cycle counter.

    Components *charge* costs to the clock::

        clock = CycleClock()
        clock.charge(40)          # one LLC hit
        clock.now                 # -> 40
        clock.now_seconds         # -> 40 / 2.6e9

    The clock never goes backwards; :meth:`charge` rejects negative
    amounts so accounting bugs surface immediately.
    """

    def __init__(self, frequency_hz=DEFAULT_FREQUENCY_HZ):
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        self.frequency_hz = frequency_hz
        self._cycles = 0
        # Charges arrive from worker threads (the parallel map/reduce
        # driver runs ecalls concurrently); the read-modify-write must
        # not interleave.
        self._lock = threading.Lock()

    @property
    def now(self):
        """Current virtual time in cycles."""
        return self._cycles

    @property
    def now_seconds(self):
        """Current virtual time in seconds."""
        return cycles_to_seconds(self._cycles, self.frequency_hz)

    def charge(self, cycles):
        """Advance the clock by ``cycles`` and return the new time."""
        if cycles < 0:
            raise ValueError("cannot charge a negative number of cycles")
        with self._lock:
            self._cycles += int(cycles)
            return self._cycles

    def measure(self):
        """Return a :class:`CycleSpan` starting now, for scoped timing."""
        return CycleSpan(self)

    def reset(self):
        """Reset the clock to zero (intended for benchmark harnesses)."""
        with self._lock:
            self._cycles = 0


class CycleSpan:
    """Measures cycles elapsed on a :class:`CycleClock` over a scope.

    Usable either explicitly (``span = clock.measure(); ...;
    span.elapsed``) or as a context manager::

        with clock.measure() as span:
            run_workload()
        print(span.elapsed)
    """

    def __init__(self, clock):
        self._clock = clock
        self.start = clock.now
        self.end = None

    def __enter__(self):
        self.start = self._clock.now
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end = self._clock.now
        return False

    @property
    def elapsed(self):
        """Cycles elapsed from start until :meth:`stop` (or now)."""
        end = self.end if self.end is not None else self._clock.now
        return end - self.start

    @property
    def elapsed_seconds(self):
        """Elapsed time converted to seconds at the clock frequency."""
        return cycles_to_seconds(self.elapsed, self._clock.frequency_hz)
