"""Named, seeded random streams.

Every stochastic component takes a :class:`RandomStream` (or a seed) so
experiments are reproducible.  Independent components derive independent
streams from one experiment seed via :func:`derive_seed`, which hashes
the seed together with a component name — adding a new component never
perturbs the draws of existing ones.
"""

import hashlib
import math
import random


def derive_seed(seed, *names):
    """Derive a child seed from ``seed`` and a path of component names.

    >>> derive_seed(42, "genpack", "arrivals") != derive_seed(42, "scbr")
    True
    """
    material = repr(seed).encode("utf-8")
    for name in names:
        material += b"/" + str(name).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A seeded random source with the distributions the workloads need.

    Thin wrapper over :class:`random.Random` adding Zipf, bounded
    Pareto, and deterministic byte generation.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, *names):
        """Derive an independent stream for a named sub-component."""
        return RandomStream(derive_seed(self.seed, *names))

    def uniform(self, low, high):
        """Uniform float in [low, high)."""
        return self._random.uniform(low, high)

    def randint(self, low, high):
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self):
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, sequence):
        """Uniformly pick one element of ``sequence``."""
        return self._random.choice(sequence)

    def sample(self, population, k):
        """Sample ``k`` distinct elements of ``population``."""
        return self._random.sample(population, k)

    def shuffle(self, items):
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def gauss(self, mu, sigma):
        """Normal draw."""
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate):
        """Exponential draw with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def lognormal(self, mu, sigma):
        """Log-normal draw."""
        return self._random.lognormvariate(mu, sigma)

    def zipf(self, n, alpha=1.0):
        """Zipf-distributed rank in [0, n): rank k has weight 1/(k+1)^alpha.

        Uses inverse-CDF sampling over the precomputed harmonic weights;
        suitable for the attribute/topic popularity skew of pub/sub
        workloads.
        """
        if n < 1:
            raise ValueError("zipf needs n >= 1")
        weights = getattr(self, "_zipf_cache", None)
        if weights is None or weights[0] != (n, alpha):
            cumulative = []
            total = 0.0
            for k in range(n):
                total += 1.0 / ((k + 1) ** alpha)
                cumulative.append(total)
            weights = ((n, alpha), cumulative, total)
            self._zipf_cache = weights
        _key, cumulative, total = weights
        target = self._random.random() * total
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low

    def bounded_pareto(self, shape, low, high):
        """Bounded Pareto draw in [low, high] (heavy-tailed job sizes)."""
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        u = self._random.random()
        ha = high ** shape
        la = low ** shape
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / shape)
        return min(max(x, low), high)

    def poisson(self, lam):
        """Poisson draw (Knuth's method; lam expected small)."""
        if lam < 0:
            raise ValueError("lam must be >= 0")
        threshold = math.exp(-lam)
        k, product = 0, 1.0
        while True:
            product *= self._random.random()
            if product <= threshold:
                return k
            k += 1

    def bytes(self, n):
        """``n`` deterministic pseudo-random bytes."""
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""
