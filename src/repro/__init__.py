"""SecureCloud reproduction: secure big data processing in untrusted clouds.

This package reproduces the system described in *SecureCloud: Secure Big
Data Processing in Untrusted Clouds* (DSN 2018) on a pure-Python substrate.
Because Intel SGX hardware is not available, the package ships a
deterministic SGX simulator (:mod:`repro.sgx`) whose cost model reproduces
the performance phenomena the paper reports (MEE cache-miss penalties and
EPC paging), and builds the full SecureCloud stack on top of it:

- :mod:`repro.sim` -- deterministic discrete-event simulation substrate.
- :mod:`repro.crypto` -- authenticated encryption, signatures, key exchange.
- :mod:`repro.sgx` -- enclaves, EPC memory model, attestation, sealing.
- :mod:`repro.scone` -- secure container runtime (shielded syscalls,
  file-system shield, stream shield, SCF, CAS).
- :mod:`repro.containers` -- Docker-like images, registry, engine.
- :mod:`repro.scbr` -- secure content-based routing.
- :mod:`repro.genpack` -- generational container scheduler + energy model.
- :mod:`repro.microservices` -- micro-service framework, event bus, QoS.
- :mod:`repro.bigdata` -- secure KV store, map/reduce, bulk transfer.
- :mod:`repro.smartgrid` -- smart-grid data simulation and analytics.
- :mod:`repro.core` -- the SecureCloud platform facade.
"""

from repro.errors import (
    AttestationError,
    CapacityError,
    ConfigurationError,
    IntegrityError,
    SecureCloudError,
)

__version__ = "1.0.0"

__all__ = [
    "AttestationError",
    "CapacityError",
    "ConfigurationError",
    "IntegrityError",
    "SecureCloudError",
    "__version__",
]
