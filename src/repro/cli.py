"""Command-line experiment runner.

Regenerates any of the paper's tables/figures without going through
pytest (useful for quick iteration and for scripting sweeps):

    python -m repro.cli list
    python -m repro.cli run e1
    python -m repro.cli run all

Must be run from the repository root (the experiment definitions live
in the top-level ``benchmarks/`` package, next to ``src/``).
"""

import argparse
import importlib
import inspect
import sys
import time

EXPERIMENTS = {
    "e1": ("benchmarks.bench_fig3_memory_swapping", "run_figure3_sweep",
           "Figure 3: SCBR matching inside vs. outside the enclave"),
    "e2": ("benchmarks.bench_e2_cache_vs_paging", "run_e2",
           "cache misses vs. EPC paging"),
    "e3": ("benchmarks.bench_e3_genpack_energy", "run_e3",
           "GenPack energy savings"),
    "e4": ("benchmarks.bench_e4_orchestration_latency", "run_e4",
           "orchestration anomaly-detection latency"),
    "e5": ("benchmarks.bench_e5_chaos_recovery", "run_e5",
           "chaos recovery: detection-to-recovery latency and goodput"),
    "e6": ("benchmarks.bench_e6_shard_failover", "run_e6",
           "sharded-plane failover: detection, sealed recovery, coverage"),
    "e7": ("benchmarks.bench_e7_node_failover", "run_e7",
           "node fault domains: correlated detection, mass recovery, "
           "live migration"),
    "e8": ("benchmarks.bench_e8_attested_joins", "run_e8",
           "fleet-scale attestation: cached verification, batched "
           "enrollment, resumption tickets"),
    "e9": ("benchmarks.bench_e9_stream_churn", "run_e9",
           "secure streaming plane: backpressure, load-shedding, "
           "exactly-once windows under churn"),
    "e10": ("benchmarks.bench_e10_front_door", "run_e10",
            "multi-tenant front door: admission, quotas, sealed audit, "
            "tenant isolation"),
    "f1": ("benchmarks.bench_f1_event_bus", "run_f1",
           "Figure 1 architecture, executable"),
    "f2": ("benchmarks.bench_f2_secure_containers", "run_f2",
           "Figure 2 secure-container workflow"),
    "a1": ("benchmarks.bench_a1_index_vs_naive", "run_a1",
           "containment index vs. naive matcher"),
    "a2": ("benchmarks.bench_a2_async_syscalls", "run_a2",
           "sync vs. async syscalls"),
    "a3": ("benchmarks.bench_a3_fs_shield", "run_a3",
           "FS shield chunk-size trade-off"),
    "a4": ("benchmarks.bench_a4_mapreduce", "run_a4",
           "secure vs. plain map/reduce"),
    "a5": ("benchmarks.bench_a5_broker_network", "run_a5",
           "covering-based broker forwarding"),
    "a6": ("benchmarks.bench_a6_combiner", "run_a6",
           "map-side combining"),
    "a7": ("benchmarks.bench_a7_genpack_monitoring", "run_a7",
           "GenPack monitoring ablation + crash injection"),
    "a8": ("benchmarks.bench_a8_paging_avoidance", "run_a8",
           "future work: paging-avoiding hot/cold matcher"),
    "a9": ("benchmarks.bench_a9_crypto_dataplane", "run_a9",
           "crypto data-plane throughput (seed vs. fused vs. chunked)"),
    "a10": ("benchmarks.bench_a10_sharded_matching", "run_a10",
            "sharded matching plane publish fan-out"),
}

# Performance gate (``python -m repro.cli gate`` / ``make bench-gate``).
# Each entry: experiment id -> (baseline artifact name, header attribute
# on the benchmark module, {row column index: metric name}).  Gated
# experiments run in smoke mode -- the virtual cycle model is
# deterministic, so smoke rows are stable across runs -- and every gated
# column is compared per labelled row against the checked-in baseline
# under benchmarks/out/.  The baselines are separate files from the full
# benchmark artifacts so a full ``make bench`` never overwrites them;
# only ``gate --update`` does.
GATE_SPECS = {
    "a1": ("gate_a1", "A1_HEADER", {1: "visits/match", 3: "virtual_ms/match"}),
    "a9": ("gate_a9", "A9_HEADER", {1: "virtual_ms/MB"}),
    "a10": ("gate_a10", "A10_HEADER", {1: "virtual_ms/pub"}),
    "e6": ("gate_e6", "E6_HEADER", {5: "recover_ms_med", 7: "silent_loss"}),
    "e7": ("gate_e7", "E7_HEADER",
           {5: "detect_ms_med", 6: "recover_ms_med", 8: "silent_loss"}),
    "e8": ("gate_e8", "E8_HEADER",
           {5: "ms_per_join", 7: "recover_ms_med", 8: "silent_loss"}),
    "e9": ("gate_e9", "E9_HEADER",
           {4: "shed", 12: "p99_lag_vsec", 13: "recover_ms_med",
            14: "silent_loss"}),
    "e10": ("gate_e10", "E10_HEADER",
            {8: "p99_ms", 10: "victim_ratio", 14: "silent_loss"}),
}
GATE_TOLERANCE = 0.10


def _load(experiment_id):
    module_name, function_name, _description = EXPERIMENTS[experiment_id]
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(
            "could not import %s (%s); run from the repository root so "
            "the benchmarks/ package is importable" % (module_name, exc)
        )
    return module, getattr(module, function_name)


def _render(experiment_id, result, module=None):
    from benchmarks._harness import format_table

    title = "%s -- %s" % (
        experiment_id.upper(), EXPERIMENTS[experiment_id][2]
    )
    if isinstance(result, list) and result and isinstance(result[0], tuple):
        # Benchmarks that export <ID>_HEADER get real column names.
        header = getattr(
            module, "%s_HEADER" % experiment_id.upper(), None
        )
        if header is None or len(header) != len(result[0]):
            header = tuple("col%d" % i for i in range(len(result[0])))
        print(format_table(title, tuple(header), result))
        return
    print(title)
    if isinstance(result, dict):
        for key, value in result.items():
            print("  %-24s %s" % (key, value))
    elif isinstance(result, tuple):
        for part in result:
            if isinstance(part, dict):
                for key, value in part.items():
                    print("  %-32s %s" % (key, value))
            else:
                print("  %s" % (part,))
    else:
        print("  %r" % (result,))


def run_experiment(experiment_id, smoke=False):
    """Execute one experiment and print its rows.

    With ``smoke=True``, experiments whose runner accepts a ``smoke``
    keyword run their reduced workload; the rest run as-is.
    """
    module, function = _load(experiment_id)
    if smoke and "smoke" in inspect.signature(function).parameters:
        result = function(smoke=True)
    else:
        result = function()
    _render(experiment_id, result, module)
    return result


def run_smoke():
    """Run every experiment once, fast where supported (CI smoke mode).

    Any raised exception fails the smoke run, so a regression in any
    benchmark path is caught without waiting for the full suite.
    """
    for experiment_id in sorted(EXPERIMENTS):
        start = time.perf_counter()
        run_experiment(experiment_id, smoke=True)
        print(
            "smoke %s ok (%.1fs)"
            % (experiment_id, time.perf_counter() - start)
        )
    return 0


def run_chaos_check():
    """Determinism gate for the chaos layer (``smoke --chaos``).

    Runs the E5 chaos-recovery, E6 sharded-plane failover, E7
    node-failover, E8 attested-join, E9 streaming-churn, and E10
    front-door scenarios twice each with the
    same seed and fails unless both passes produce identical rows -- seeded fault injection (and
    the fault log / delivery set it produces) must be reproducible or
    every chaos test is flaky by construction.  Each pass runs under a
    fresh metrics registry and the canonical snapshots must also be
    byte-identical: the telemetry plane may not observe anything the
    seed does not determine.  The chunked sealing plane is held to the
    same bar: the same payload sealed twice through the process pool
    (and once serially) must produce byte-identical ciphertext.
    """
    from repro import telemetry

    start = time.perf_counter()
    total = 0
    for experiment_id in ("e5", "e6", "e7", "e8", "e9", "e10"):
        _module, function = _load(experiment_id)
        with telemetry.enabled() as first_registry:
            first = function(smoke=True)
        with telemetry.enabled() as second_registry:
            second = function(smoke=True)
        if first != second:
            print(
                "chaos determinism FAILED: two same-seed %s runs diverged"
                % experiment_id
            )
            for row_a, row_b in zip(first, second):
                marker = "  " if row_a == row_b else "!="
                print("%s %r | %r" % (marker, row_a, row_b))
            return 1
        if first_registry.to_json() != second_registry.to_json():
            print(
                "chaos determinism FAILED: two same-seed %s runs produced "
                "different metric snapshots" % experiment_id
            )
            snap_a = first_registry.snapshot()
            snap_b = second_registry.snapshot()
            for section in sorted(set(snap_a) | set(snap_b)):
                values_a = snap_a.get(section, {})
                values_b = snap_b.get(section, {})
                for name in sorted(set(values_a) | set(values_b)):
                    if values_a.get(name) != values_b.get(name):
                        print("!= %s %s: %r | %r" % (
                            section, name,
                            values_a.get(name), values_b.get(name),
                        ))
            return 1
        _render(experiment_id, first)
        total += len(first)
    if _chunked_seal_determinism() != 0:
        return 1
    print(
        "chaos determinism ok: %d scenarios identical across two runs, "
        "metric snapshots byte-identical, chunked seals byte-identical "
        "(%.1fs)"
        % (total, time.perf_counter() - start)
    )
    return 0


def _chunked_seal_determinism():
    """Assert chunked-parallel sealing is byte-deterministic.

    Seals the same payload twice with the process pool enabled (4
    workers) and once serially, under a fixed key/nonce/chunk-size:
    all three ciphertexts must be byte-identical.  Worker scheduling
    must never leak into the wire bytes -- otherwise sealed artifacts
    would differ across hosts and every chunked test would be flaky.
    """
    from repro.crypto.aead import AeadKey
    from repro.crypto.primitives import DeterministicRandomSource

    key = AeadKey.generate(DeterministicRandomSource(77))
    nonce = DeterministicRandomSource(78).bytes(16)
    payload = DeterministicRandomSource(79).bytes(512 * 1024)
    seals = [
        key.encrypt_batch(
            [payload], nonce=nonce, chunk_size=64 * 1024, workers=workers
        ).to_bytes()
        for workers in (4, 4, 1)
    ]
    if seals[0] != seals[1] or seals[0] != seals[2]:
        print(
            "chaos determinism FAILED: chunked seals diverged "
            "(pool run A == pool run B: %s; pool == serial: %s)"
            % (seals[0] == seals[1], seals[0] == seals[2])
        )
        return 1
    print(
        "chunked seal determinism ok: 2 pooled runs + 1 serial run "
        "byte-identical (%d wire bytes)" % len(seals[0])
    )
    return 0


def run_metrics(experiment_id):
    """Run one experiment with telemetry enabled and dump the snapshot.

    The experiment runs in smoke mode (where supported) under a fresh
    live registry; the canonical metric snapshot is printed as JSON and
    -- because the benchmark harness sees the live registry -- a
    ``benchmarks/out/<id>.telemetry.json`` sidecar is written next to
    the usual table artifacts.
    """
    import json

    from repro import telemetry
    from benchmarks import _harness

    module, function = _load(experiment_id)
    with telemetry.enabled() as registry:
        if "smoke" in inspect.signature(function).parameters:
            function(smoke=True)
        else:
            function()
        # Most benchmarks report() from their pytest wrapper, so write
        # the sidecar here under the module's artifact name.
        artifact = module.__name__.rpartition(".")[2]
        if artifact.startswith("bench_"):
            artifact = artifact[len("bench_"):]
        path = _harness.write_telemetry_sidecar(artifact, registry)
    print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    if path:
        print("telemetry sidecar written: %s" % path, file=sys.stderr)
    return 0


def _traced_publish(seed=66, shards=3, subscriptions=24, publications=4):
    """Drive a telemetry-enabled sharded plane through a short stream.

    Returns ``(router, operator_key, tracer)`` after the last
    publication: the host-side tracer holds the driver's plaintext
    spans, and every enclave holds sealed spans exportable only under
    ``operator_key``.
    """
    from repro.crypto.aead import AeadKey
    from repro.scbr.filters import Publication, Subscription
    from repro.scbr.messages import EncryptedEnvelope, serialize_publication
    from repro.scbr.router import ScbrClient
    from repro.scbr.sharding import ShardedScbrRouter
    from repro.scbr.workload import ScbrWorkload
    from repro.sgx.attestation import AttestationService
    from repro.sgx.platform import SgxPlatform
    from repro.telemetry import SpanRecorder

    operator_key = AeadKey.generate()
    tracer = SpanRecorder("driver")
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ShardedScbrRouter(
        platform,
        lambda i: SgxPlatform(seed=100 * seed + i, quoting_key_bits=512),
        attestation_service=attestation,
        shards=shards,
        telemetry_key=operator_key,
        tracer=tracer,
    )
    attestation.trust_measurement(router.measurement)
    alice = ScbrClient("alice", router, attestation)
    workload = ScbrWorkload(seed=seed, num_attributes=6,
                            containment_fraction=0.5, num_subscribers=1)
    for subscription in workload.subscriptions(subscriptions):
        alice.subscribe(Subscription(
            subscription.subscription_id,
            list(subscription.constraints.values()),
            "alice",
        ))
    publisher = ScbrClient("publisher", router, attestation)
    for publication in workload.publications(publications):
        envelope = EncryptedEnvelope.seal(
            publisher.key, publisher.client_id, "publish",
            serialize_publication(Publication(publication.attributes)),
        )
        router.publish(envelope)
    return router, operator_key, tracer


def run_trace(seed=66):
    """Reconstruct an end-to-end publish flame view across enclaves.

    Publishes through a telemetry-enabled sharded plane, opens each
    enclave's sealed snapshot with the operator key, joins in-enclave
    spans with the driver's spans into one tree, and renders the last
    publication's publish->match->notify flame view.  Fails unless the
    root span's duration equals the plane's benchmark-reported publish
    latency (``last_publish_cycles``) within the publish histogram's
    bucket resolution at that value.
    """
    from repro import telemetry

    with telemetry.enabled() as registry:
        router, operator_key, tracer = _traced_publish(seed=seed)
        sealed = router.export_telemetry()

    spans = list(tracer.spans)
    for origin, blob in sealed:
        payload = telemetry.open_snapshot(operator_key, blob)
        enclave_spans = telemetry.spans_from_snapshot(payload)
        spans.extend(enclave_spans)
        counters = payload.get("metrics", {}).get("counters", {})
        print("sealed snapshot %-8s %d spans  %s" % (
            origin, len(enclave_spans),
            "  ".join("%s=%s" % (name, counters[name])
                      for name in sorted(counters)),
        ))

    roots = [span for span in tracer.spans if span.name == "scbr.publish"]
    if not roots:
        print("trace FAILED: no publish root span recorded")
        return 1
    root = roots[-1]
    tree = telemetry.build_span_tree(spans, trace_id=root.trace_id)
    print()
    print(telemetry.render_flame(tree))

    histogram = registry.histogram(
        "scbr.publish_cycles", buckets=telemetry.DEFAULT_CYCLE_BUCKETS
    )
    tolerance = histogram.resolution(router.last_publish_cycles)
    delta = abs(root.duration - router.last_publish_cycles)
    if delta > tolerance:
        print(
            "trace FAILED: root span %.0f cycles vs. benchmark latency "
            "%.0f cycles (delta %.0f > bucket resolution %.4g)"
            % (root.duration, router.last_publish_cycles, delta, tolerance)
        )
        return 1
    print(
        "trace ok: root span %.0f cycles == benchmark publish latency "
        "%.0f cycles (bucket resolution %.4g)"
        % (root.duration, router.last_publish_cycles, tolerance)
    )
    return 0


def run_gate(update=False):
    """Fail if a gated metric regressed >10% against its baseline.

    Runs every gated experiment in smoke mode,
    compares the gated columns row-by-row against
    ``benchmarks/out/gate_<id>.json``, and prints ONE aggregated
    summary table across all baselines with a single pass/fail exit
    code -- CI reads one verdict, not five.
    With ``update=True`` the fresh rows replace the baselines instead.
    """
    import json
    import os

    from benchmarks import _harness

    summary = []     # (gate, row, metric, baseline, fresh, delta, status)
    failures = 0
    for experiment_id in sorted(GATE_SPECS):
        baseline_name, header_attribute, metrics = GATE_SPECS[experiment_id]
        module, function = _load(experiment_id)
        rows = function(smoke=True)
        if update:
            _harness.report(
                baseline_name,
                "Performance gate baseline: %s (smoke mode)"
                % experiment_id.upper(),
                getattr(module, header_attribute),
                rows,
                notes=(
                    "regenerate with: python -m repro.cli gate --update",
                    "compared columns: %s"
                    % ", ".join(metrics[i] for i in sorted(metrics)),
                ),
            )
            continue
        path = os.path.join(_harness._OUT_DIR, baseline_name + ".json")
        if not os.path.exists(path):
            print(
                "gate: missing baseline %s -- run "
                "'python -m repro.cli gate --update' and commit it" % path
            )
            return 1
        with open(path, "r", encoding="utf-8") as handle:
            baseline_rows = {
                row[0]: row for row in json.load(handle)["rows"]
            }
        for row in rows:
            label = row[0]
            baseline = baseline_rows.get(label)
            if baseline is None:
                failures += 1
                summary.append((
                    experiment_id, label, "-", "missing", "-", "-",
                    "FAIL (gate --update needed?)",
                ))
                continue
            for column in sorted(metrics):
                fresh, old = float(row[column]), float(baseline[column])
                delta = (fresh / old - 1.0) * 100.0 if old else 0.0
                regressed = fresh > old * (1.0 + GATE_TOLERANCE)
                if regressed:
                    failures += 1
                summary.append((
                    experiment_id, label, metrics[column],
                    "%.4g" % old, "%.4g" % fresh,
                    "%+.1f%%" % delta,
                    "FAIL" if regressed else "ok",
                ))
    if update:
        print("gate baselines updated under benchmarks/out/")
        return 0
    print(_harness.format_table(
        "Performance gate: %d baselines, tolerance +%.0f%%"
        % (len(GATE_SPECS), GATE_TOLERANCE * 100.0),
        ("gate", "row", "metric", "baseline", "fresh", "delta", "status"),
        summary,
    ))
    if failures:
        print("performance gate FAILED: %d regression(s)" % failures)
        return 1
    print("performance gate passed (%d metrics, tolerance +%.0f%%)"
          % (len(summary), GATE_TOLERANCE * 100.0))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate SecureCloud reproduction experiments",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list experiment ids")
    runner = commands.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    smoke = commands.add_parser(
        "smoke", help="run every experiment in fast smoke mode (CI)"
    )
    smoke.add_argument(
        "--chaos", action="store_true",
        help="additionally verify seeded chaos runs are deterministic",
    )
    gate = commands.add_parser(
        "gate", help="fail on >10%% regression vs. checked-in baselines"
    )
    gate.add_argument(
        "--update", action="store_true",
        help="regenerate the gate baselines instead of comparing",
    )
    metrics = commands.add_parser(
        "metrics", help="run one experiment with telemetry on, dump snapshot"
    )
    metrics.add_argument("experiment", choices=sorted(EXPERIMENTS))
    trace = commands.add_parser(
        "trace",
        help="reconstruct a cross-enclave publish flame view from sealed "
             "telemetry",
    )
    trace.add_argument(
        "--seed", type=int, default=66, help="workload seed (default 66)"
    )
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print("%-4s %s" % (experiment_id, EXPERIMENTS[experiment_id][2]))
        return 0
    if arguments.command == "smoke":
        status = run_smoke()
        if status == 0 and arguments.chaos:
            status = run_chaos_check()
        return status
    if arguments.command == "gate":
        return run_gate(update=arguments.update)
    if arguments.command == "metrics":
        return run_metrics(arguments.experiment)
    if arguments.command == "trace":
        return run_trace(seed=arguments.seed)
    targets = (
        sorted(EXPERIMENTS)
        if arguments.experiment == "all"
        else [arguments.experiment]
    )
    for experiment_id in targets:
        run_experiment(experiment_id)
    return 0


if __name__ == "__main__":
    sys.exit(main())
