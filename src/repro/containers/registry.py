"""The untrusted image registry.

Stores images by reference and digest.  Because it is *untrusted*, it
exposes the same attacker toolbox style as the untrusted chunk store:
tests use :meth:`tamper_layer` to verify that secure images survive a
hostile registry (confidentiality via encryption, integrity via the
signed FS protection file and digest checks in the SCONE client).
"""

from repro.errors import ConfigurationError
from repro.containers.image import Image, Layer


class Registry:
    """A name -> image store with optional signature records."""

    def __init__(self, name="registry.example.com"):
        self.name = name
        self._images = {}
        self._signatures = {}
        self.pushes = 0
        self.pulls = 0

    def push(self, image, signature=None, signer_public_key=None):
        """Publish an image; optionally record the creator's signature.

        The signature covers the image digest (which in turn covers the
        FS protection file blob), implementing "the image creator would
        only sign the FS protection file" from Section V-A.
        """
        self._images[image.reference] = image
        if signature is not None:
            self._signatures[image.reference] = (signature, signer_public_key)
        self.pushes += 1
        return image.digest

    def pull(self, reference):
        """Fetch an image by ``name:tag``."""
        try:
            image = self._images[reference]
        except KeyError:
            raise ConfigurationError(
                "no image %r in registry %s" % (reference, self.name)
            ) from None
        self.pulls += 1
        return image

    def signature_for(self, reference):
        """The recorded ``(signature, public_key)`` pair, if any."""
        return self._signatures.get(reference)

    def references(self):
        """All published references."""
        return sorted(self._images)

    # --- attacker's toolbox (tests only) ---

    def tamper_layer(self, reference, layer_index, path, new_blob):
        """Replace one file inside a stored image's layer."""
        image = self._images[reference]
        layer = image.layers[layer_index]
        files = dict(layer.files)
        files[path] = new_blob
        tampered_layers = list(image.layers)
        tampered_layers[layer_index] = Layer(files, layer.comment)
        self._images[reference] = Image(
            image.name, image.tag, tampered_layers, image.config,
            enclave_code=image.enclave_code,
        )

    def replace_image(self, reference, image):
        """Swap a published image wholesale (malicious re-publish)."""
        self._images[reference] = image
