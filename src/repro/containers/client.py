"""The SCONE client: the image creator's and operator's tool.

Wraps the Docker-like workflow without modifying the engine or its API
(the paper's explicit design constraint): build a secure image, sign
its digest, push it to the untrusted registry, verify a pulled image
before running it, and customise published images by adding layers.
"""

from repro.errors import IntegrityError
from repro.crypto.rsa import RsaKeyPair
from repro.containers.build import SecureImageBuilder


class SconeClient:
    """Build / sign / push / verify / customise secure images."""

    def __init__(self, registry, cas, signing_key=None, key_hierarchy=None,
                 key_bits=1024):
        self.registry = registry
        self.cas = cas
        self.signing_key = signing_key or RsaKeyPair.generate(bits=key_bits)
        self.builder = SecureImageBuilder(key_hierarchy=key_hierarchy)

    def build_and_publish(self, name, entry_points, protected_files=None,
                          public_files=None, tag="latest", arguments=(),
                          environment=None):
        """The full trusted-side pipeline; returns the build result.

        After this call the image is in the (untrusted) registry, the
        SCF is registered with the CAS under the enclave measurement,
        and the image digest is signed by the creator.
        """
        result = self.builder.build(
            name,
            entry_points,
            protected_files=protected_files,
            public_files=public_files,
            tag=tag,
            arguments=arguments,
            environment=environment,
        )
        self.cas.register_scf(result.measurement, result.scf)
        signature = self.signing_key.sign(result.image.digest.encode("ascii"))
        self.registry.push(
            result.image,
            signature=signature,
            signer_public_key=self.signing_key.public_key,
        )
        return result

    def pull_verified(self, reference, trusted_signer=None):
        """Pull an image and verify the creator's signature on it.

        ``trusted_signer`` pins the expected public key; when omitted,
        the key recorded in the registry is used (trust-on-first-use).
        Raises :class:`~repro.errors.IntegrityError` if the image was
        modified after signing or carries no signature.
        """
        image = self.registry.pull(reference)
        record = self.registry.signature_for(reference)
        if record is None:
            raise IntegrityError("image %s is unsigned" % reference)
        signature, recorded_key = record
        public_key = trusted_signer or recorded_key
        try:
            public_key.verify(image.digest.encode("ascii"), signature)
        except IntegrityError as exc:
            raise IntegrityError(
                "image %s failed signature verification: modified after "
                "signing or wrong signer" % reference
            ) from exc
        return image

    def customize(self, reference, extra_files, new_tag, comment="customised"):
        """Add a file-system layer to a published image and re-sign it.

        Mirrors the paper's customisation story: the base image's
        protected content stays sealed by the original FS protection
        file; the customiser only layers additional (public) files and
        signs the resulting digest with *their* key.
        """
        base = self.pull_verified(reference)
        custom = base.add_layer(extra_files, comment=comment)
        custom.tag = new_tag
        signature = self.signing_key.sign(custom.digest.encode("ascii"))
        self.registry.push(
            custom,
            signature=signature,
            signer_public_key=self.signing_key.public_key,
        )
        return custom
