"""The secure image build pipeline (paper Figure 2, left half).

Runs in the *trusted environment* of the image creator:

1. "statically link" the micro-service against the SCONE library --
   here: wrap the application entry points into measured
   :class:`~repro.sgx.enclave.EnclaveCode` (no shared libraries by
   design, so the whole code identity is covered by the measurement);
2. encrypt every protected file with per-file keys through the FS
   shield, producing ciphertext chunk blobs that go into the image;
3. produce the FS protection file (chunk MACs + file keys), encrypt it,
   and add it to the image under ``/.scone/fspf``;
4. derive the SCF (stream keys, FS protection file hash + key, args,
   env) and register it with the CAS under the enclave measurement.
"""

from dataclasses import dataclass

from repro.crypto.keys import KeyHierarchy
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.scone.scf import StartupConfiguration
from repro.sgx.enclave import EnclaveCode
from repro.containers.image import FSPF_PATH, Image, ImageConfig, Layer, chunk_path


@dataclass
class BuildResult:
    """Everything the build pipeline produced."""

    image: Image
    scf: StartupConfiguration
    measurement: str
    fspf_hash: bytes


class SecureImageBuilder:
    """Builds secure images inside a trusted environment."""

    def __init__(self, key_hierarchy=None, chunk_size=4096):
        self.keys = key_hierarchy or KeyHierarchy.generate()
        self.chunk_size = chunk_size

    def build(self, name, entry_points, protected_files=None, public_files=None,
              tag="latest", arguments=(), environment=None, config=None,
              code_version=1):
        """Produce a :class:`BuildResult` for the given micro-service.

        ``protected_files`` maps paths to plaintext that must be secret
        and authenticated; ``public_files`` are shipped as-is (e.g. open
        configuration a customiser may want to inspect).
        """
        enclave_code = EnclaveCode(name, entry_points, version=code_version)

        # Encrypt protected files via the FS shield into a staging store.
        staging_store = UntrustedStore()
        volume = ProtectedVolume(staging_store, chunk_size=self.chunk_size)
        for path, plaintext in sorted((protected_files or {}).items()):
            volume.write(path, plaintext)

        layer_files = {}
        for (path, index), blob in staging_store._chunks.items():
            layer_files[chunk_path(path, index)] = blob
        fspf_key = self.keys.aead_key("fspf")
        fspf_hash = volume.protection.content_hash()
        layer_files[FSPF_PATH] = volume.protection.encrypt(fspf_key)
        layer_files.update(public_files or {})

        image = Image(
            name,
            tag,
            layers=[Layer(layer_files, comment="secure build")],
            config=config or ImageConfig(),
            enclave_code=enclave_code,
        )

        scf = StartupConfiguration.create(
            self.keys,
            fspf_hash,
            arguments=arguments,
            environment=environment,
        )
        return BuildResult(
            image=image,
            scf=scf,
            measurement=enclave_code.measurement,
            fspf_hash=fspf_hash,
        )
