"""Content-addressed container images.

A :class:`Layer` maps paths to blobs; its identity is a hash of its
contents, so any modification in transit or in the registry changes the
digest.  An :class:`Image` is an ordered stack of layers plus a config;
later layers override earlier ones when flattened, which is how
end-users customise a published secure image (paper Section V-A).

Secure images carry two extra artifacts produced by the build pipeline:
the encrypted FS protection file (under ``FSPF_PATH``) and the enclave
code reference; their confidentiality/integrity does **not** depend on
the registry being honest.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.crypto.primitives import sha256_hex

FSPF_PATH = "/.scone/fspf"
CHUNK_PREFIX = "/.scone/chunks/"


@dataclass(frozen=True)
class Layer:
    """One immutable file-system layer."""

    files: dict
    comment: str = ""

    @property
    def digest(self):
        """Content hash over paths and blobs."""
        hasher_input = []
        for path in sorted(self.files):
            blob = self.files[path]
            hasher_input.append(path.encode("utf-8"))
            hasher_input.append(len(blob).to_bytes(8, "big"))
            hasher_input.append(bytes(blob))
        return sha256_hex(b"".join(hasher_input))

    def size(self):
        """Total bytes across all files."""
        return sum(len(blob) for blob in self.files.values())


@dataclass
class ImageConfig:
    """Runtime configuration baked into the image."""

    entrypoint: str = "main"
    environment: dict = field(default_factory=dict)
    labels: dict = field(default_factory=dict)

    def canonical_bytes(self):
        pieces = [self.entrypoint.encode("utf-8")]
        for mapping in (self.environment, self.labels):
            for key in sorted(mapping):
                pieces.append(
                    ("%s=%s" % (key, mapping[key])).encode("utf-8")
                )
        return b"|".join(pieces)


class Image:
    """An ordered stack of layers under a ``name:tag`` reference."""

    def __init__(self, name, tag="latest", layers=(), config=None,
                 enclave_code=None):
        if not name:
            raise ConfigurationError("image name must be non-empty")
        self.name = name
        self.tag = tag
        self.layers = list(layers)
        self.config = config or ImageConfig()
        # For secure images: the measured code that must run in the
        # enclave.  Plain images leave it None.
        self.enclave_code = enclave_code

    @property
    def reference(self):
        """The ``name:tag`` string."""
        return "%s:%s" % (self.name, self.tag)

    @property
    def digest(self):
        """Manifest digest over layer digests + config (+ measurement)."""
        pieces = [layer.digest.encode("ascii") for layer in self.layers]
        pieces.append(self.config.canonical_bytes())
        if self.enclave_code is not None:
            pieces.append(self.enclave_code.measurement.encode("ascii"))
        return sha256_hex(b"|".join(pieces))

    @property
    def is_secure(self):
        """Whether this image was produced by the secure build pipeline."""
        return self.enclave_code is not None and any(
            FSPF_PATH in layer.files for layer in self.layers
        )

    def flatten(self):
        """The effective file system: later layers win."""
        merged = {}
        for layer in self.layers:
            merged.update(layer.files)
        return merged

    def add_layer(self, files, comment=""):
        """Return a new image with one more (customisation) layer."""
        extended = Image(
            self.name,
            self.tag,
            self.layers + [Layer(dict(files), comment)],
            self.config,
            enclave_code=self.enclave_code,
        )
        return extended

    def fspf_blob(self):
        """The encrypted FS protection file carried by a secure image."""
        flattened = self.flatten()
        blob = flattened.get(FSPF_PATH)
        if blob is None:
            raise ConfigurationError(
                "image %s carries no FS protection file" % self.reference
            )
        return blob

    def protected_chunks(self):
        """The encrypted chunk blobs, keyed by ``(path, index)``."""
        chunks = {}
        for path, blob in self.flatten().items():
            if not path.startswith(CHUNK_PREFIX):
                continue
            remainder = path[len(CHUNK_PREFIX):]
            encoded_path, _sep, index = remainder.rpartition("#")
            chunks[("/" + encoded_path.lstrip("/"), int(index))] = blob
        return chunks

    def size(self):
        """Total bytes across all layers."""
        return sum(layer.size() for layer in self.layers)


def chunk_path(path, index):
    """Layer path under which an encrypted chunk is stored."""
    return "%s%s#%d" % (CHUNK_PREFIX, path.lstrip("/"), index)
