"""Hosts and the container engine.

The engine runs secure and regular containers through the *same* API --
the paper's requirement that "secure containers are indistinguishable
from regular containers" from the infrastructure's perspective.  For a
secure image the engine transparently reconstructs the untrusted chunk
store from the image layers and boots a SCONE process on the host's SGX
platform; for a plain image it simply invokes the entrypoint.
"""

import enum
import itertools

from repro.errors import CapacityError, ConfigurationError
from repro.scone.fs_shield import UntrustedStore
from repro.scone.runtime import SconeProcess, SconeRuntimeConfig
from repro.sgx.platform import SgxPlatform

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    """Lifecycle states."""

    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"


class Host:
    """One machine in the data center."""

    def __init__(self, name, cpu_cores=8, memory_mb=32_768, sgx=True,
                 platform=None, seed=None):
        self.name = name
        self.cpu_cores = cpu_cores
        self.memory_mb = memory_mb
        self.sgx = sgx
        if sgx:
            self.platform = platform or SgxPlatform(seed=seed, quoting_key_bits=512)
        else:
            self.platform = None
        self.containers = []

    @property
    def cpu_allocated(self):
        """Cores promised to non-exited containers."""
        return sum(
            container.cpu_cores
            for container in self.containers
            if container.state is not ContainerState.EXITED
        )

    @property
    def memory_allocated(self):
        """Memory promised to non-exited containers (MB)."""
        return sum(
            container.memory_mb
            for container in self.containers
            if container.state is not ContainerState.EXITED
        )

    def fits(self, cpu_cores, memory_mb):
        """Whether the host can take one more container of this size."""
        return (
            self.cpu_allocated + cpu_cores <= self.cpu_cores
            and self.memory_allocated + memory_mb <= self.memory_mb
        )


class Container:
    """One (possibly secure) container instance on a host."""

    def __init__(self, image, host, cpu_cores=1, memory_mb=512):
        self.container_id = "c%06d" % next(_container_ids)
        self.image = image
        self.host = host
        self.cpu_cores = cpu_cores
        self.memory_mb = memory_mb
        self.state = ContainerState.CREATED
        self.exit_value = None
        self.process = None  # SconeProcess for secure images

    @property
    def is_secure(self):
        """Whether this container runs inside an enclave."""
        return self.image.is_secure

    def run(self, *args, **kwargs):
        """Execute the image entrypoint; returns its result."""
        if self.state is ContainerState.EXITED:
            raise ConfigurationError("container %s has exited" % self.container_id)
        self.state = ContainerState.RUNNING
        if self.process is not None:
            result = self.process.run(self.image.config.entrypoint, *args, **kwargs)
        else:
            entrypoint = self.image.config.labels.get("plain-entrypoint")
            if entrypoint is None:
                raise ConfigurationError(
                    "plain image %s has no runnable entrypoint"
                    % self.image.reference
                )
            result = entrypoint(*args, **kwargs)
        return result

    def stop(self, exit_value=None):
        """Terminate the container."""
        if self.process is not None:
            self.process.stop()
        self.state = ContainerState.EXITED
        self.exit_value = exit_value


class ContainerEngine:
    """Creates containers from images on hosts -- one API for both kinds."""

    def __init__(self, cas=None, runtime_config=None):
        self.cas = cas
        self.runtime_config = runtime_config or SconeRuntimeConfig()
        self.launched = 0

    def create(self, image, host, cpu_cores=1, memory_mb=512):
        """Create (and for secure images, boot+attest) a container."""
        if not host.fits(cpu_cores, memory_mb):
            raise CapacityError(
                "host %s cannot fit a %d-core/%d MB container"
                % (host.name, cpu_cores, memory_mb)
            )
        container = Container(image, host, cpu_cores, memory_mb)
        if image.is_secure:
            if not host.sgx:
                raise ConfigurationError(
                    "host %s has no SGX support for secure image %s"
                    % (host.name, image.reference)
                )
            if self.cas is None:
                raise ConfigurationError(
                    "engine needs a CAS to launch secure containers"
                )
            store = UntrustedStore()
            for (path, index), blob in image.protected_chunks().items():
                store.put(path, index, blob)
            process = SconeProcess(
                host.platform,
                image.enclave_code,
                self.cas,
                store=store,
                fspf_blob=image.fspf_blob(),
                config=self.runtime_config,
            )
            process.start()  # raises AttestationError for unknown code
            container.process = process
        host.containers.append(container)
        self.launched += 1
        return container
