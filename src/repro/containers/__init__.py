"""A Docker-like container platform with SCONE secure containers.

Models the workflow of the paper's Figure 2: a trusted build
environment produces a *secure image* (encrypted file-system layers plus
an FS protection file), publishes it through an **untrusted** registry,
and an engine on an SGX host runs it as a secure container that is
indistinguishable from a regular one.

- :mod:`~repro.containers.image` -- content-addressed layers & images.
- :mod:`~repro.containers.registry` -- the untrusted image registry.
- :mod:`~repro.containers.build` -- the secure image build pipeline.
- :mod:`~repro.containers.client` -- the SCONE client (Docker-client
  wrapper): build, sign, push, verify, customize.
- :mod:`~repro.containers.engine` -- hosts and container lifecycle.
"""

from repro.containers.build import SecureImageBuilder
from repro.containers.client import SconeClient
from repro.containers.engine import Container, ContainerEngine, ContainerState, Host
from repro.containers.image import Image, Layer
from repro.containers.registry import Registry

__all__ = [
    "Container",
    "ContainerEngine",
    "ContainerState",
    "Host",
    "Image",
    "Layer",
    "Registry",
    "SconeClient",
    "SecureImageBuilder",
]
