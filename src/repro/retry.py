"""Retry with exponential backoff in virtual time.

Every self-healing component (checkpointed map/reduce, reliable bulk
transfer, the secure table, broker failover) shares one policy object
and one driver loop instead of growing its own ad-hoc while-loop.
Failures are classified by type -- :class:`~repro.errors.TransientError`
is retryable, everything else propagates immediately -- and backoff is
charged to *virtual* time (an accumulator, optionally mirrored onto a
simulation clock), never to the wall clock, so recovery experiments
stay fast and deterministic.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError, RetryExhaustedError, TransientError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=4`` means one
    try plus at most three retries.  The delay before retry *n*
    (1-based) is ``base_delay * factor ** (n - 1)``, capped at
    ``max_delay``.
    """

    max_attempts: int = 4
    base_delay: float = 0.010        # 10 ms of virtual time
    factor: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.factor < 1.0:
            raise ConfigurationError("invalid backoff parameters")

    def delay(self, attempt):
        """Backoff before retrying after failed attempt ``attempt``."""
        if attempt < 1:
            raise ConfigurationError("attempts are counted from 1")
        return min(self.base_delay * self.factor ** (attempt - 1),
                   self.max_delay)


class BackoffClock:
    """Accumulates virtual seconds spent waiting between retries.

    Components own one of these and report :attr:`seconds` in their
    recovery statistics; benchmarks convert it into
    detection-to-recovery latency without ever sleeping for real.
    """

    def __init__(self):
        self.seconds = 0.0
        self.sleeps = 0

    def sleep(self, seconds):
        """Charge ``seconds`` of virtual backoff."""
        if seconds < 0:
            raise ConfigurationError("cannot sleep a negative duration")
        self.seconds += seconds
        self.sleeps += 1


def retry_call(operation, policy=None, clock=None, on_retry=None):
    """Run ``operation(attempt)`` until it succeeds or the budget ends.

    ``attempt`` is 1-based.  Only :class:`TransientError` triggers a
    retry; any other exception propagates unchanged.  After
    ``policy.max_attempts`` failures a :class:`RetryExhaustedError`
    wrapping the last transient fault is raised -- the job fails
    cleanly with one typed error.

    ``clock`` (a :class:`BackoffClock`) is charged the backoff delay;
    ``on_retry(attempt, error, delay)`` observes each recovery step.
    """
    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return operation(attempt)
        except TransientError as exc:
            if attempt >= policy.max_attempts:
                raise RetryExhaustedError(
                    "gave up after %d attempts: %s" % (attempt, exc),
                    attempts=attempt,
                    last_error=exc,
                ) from exc
            delay = policy.delay(attempt)
            if clock is not None:
                clock.sleep(delay)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
